#include "imm/imm.hpp"

#include "imm/imm_core.hpp"
#include "imm/sampler.hpp"
#include "support/assert.hpp"

namespace ripples {

namespace {

/// Fills the fields common to all drivers from the martingale outcome.
void finalize_result(ImmResult &result, const detail::MartingaleOutcome &outcome) {
  result.seeds = outcome.selection.seeds;
  result.theta = outcome.theta;
  result.num_samples = outcome.num_samples;
  result.lower_bound = outcome.lower_bound;
  result.coverage_fraction = outcome.selection.coverage_fraction();
}

} // namespace

ImmResult imm_sequential(const CsrGraph &graph, const ImmOptions &options) {
  ImmResult result;
  StopWatch total;
  RRRCollection collection;

  auto extend_to = [&](std::uint64_t target) {
    sample_sequential(graph, options.model, target, options.seed, collection);
    result.rrr_peak_bytes =
        std::max(result.rrr_peak_bytes, collection.footprint_bytes());
    result.total_associations =
        std::max(result.total_associations, collection.total_associations());
  };
  auto select = [&] {
    return select_seeds(graph.num_vertices(), options.k, collection.sets());
  };

  auto outcome = detail::run_imm_martingale(graph.num_vertices(), options.k,
                                            options.epsilon, options.l,
                                            extend_to, select, result.timers);
  finalize_result(result, outcome);
  result.timers.add(Phase::Other,
                    total.elapsed_seconds() - result.timers.total());
  return result;
}

ImmResult imm_baseline_hypergraph(const CsrGraph &graph,
                                  const ImmOptions &options) {
  ImmResult result;
  StopWatch total;
  HypergraphCollection collection(graph.num_vertices());

  auto extend_to = [&](std::uint64_t target) {
    sample_hypergraph(graph, options.model, target, options.seed, collection);
    result.rrr_peak_bytes =
        std::max(result.rrr_peak_bytes, collection.footprint_bytes());
    result.total_associations =
        std::max(result.total_associations, collection.total_associations());
  };
  auto select = [&] {
    return select_seeds_hypergraph(graph.num_vertices(), options.k, collection);
  };

  auto outcome = detail::run_imm_martingale(graph.num_vertices(), options.k,
                                            options.epsilon, options.l,
                                            extend_to, select, result.timers);
  finalize_result(result, outcome);
  result.timers.add(Phase::Other,
                    total.elapsed_seconds() - result.timers.total());
  return result;
}

ImmResult imm_multithreaded(const CsrGraph &graph, const ImmOptions &options) {
  RIPPLES_ASSERT(options.num_threads >= 1);
  ImmResult result;
  StopWatch total;
  RRRCollection collection;

  auto extend_to = [&](std::uint64_t target) {
    sample_multithreaded(graph, options.model, target, options.seed,
                         options.num_threads, collection);
    result.rrr_peak_bytes =
        std::max(result.rrr_peak_bytes, collection.footprint_bytes());
    result.total_associations =
        std::max(result.total_associations, collection.total_associations());
  };
  auto select = [&] {
    return select_seeds_multithreaded(graph.num_vertices(), options.k,
                                      collection.sets(), options.num_threads);
  };

  auto outcome = detail::run_imm_martingale(graph.num_vertices(), options.k,
                                            options.epsilon, options.l,
                                            extend_to, select, result.timers);
  finalize_result(result, outcome);
  result.timers.add(Phase::Other,
                    total.elapsed_seconds() - result.timers.total());
  return result;
}

} // namespace ripples
