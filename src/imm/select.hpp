/// \file select.hpp
/// \brief SelectSeeds: greedy maximum-coverage over the RRR sets (Alg. 4).
///
/// Selecting the k vertices covering the most RRR sets is the max-coverage
/// greedy: maintain per-vertex counters of sample membership, repeatedly
/// take the argmax, then retire every sample containing it (those samples
/// can no longer add influence) and decrement the counters of their members.
///
/// Three implementations:
///  * select_seeds            — sequential reference.
///  * select_seeds_multithreaded — Algorithm 4: each thread owns the
///    counters of a vertex interval [vl, vh), so counting and decrementing
///    need no atomics; sorted samples let a thread binary-search directly to
///    its interval inside every sample.
///  * select_seeds_hypergraph  — the baseline's variant that exploits the
///    vertex -> samples index for cheaper retirement at 2x memory.
///
/// The distributed selection (Section 3.2) reuses the counting kernels here
/// around an allreduce; see imm_distributed.cpp.
///
/// Tie-breaking: the smallest vertex id among maxima, in every
/// implementation — the cross-implementation determinism tests rely on it.
#ifndef RIPPLES_IMM_SELECT_HPP
#define RIPPLES_IMM_SELECT_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "imm/rrr_collection.hpp"

namespace ripples {

struct SelectionResult {
  std::vector<vertex_t> seeds;
  std::uint64_t covered_samples = 0;
  std::uint64_t total_samples = 0;

  /// F_R(S): fraction of RRR sets covered by the selected seeds; the input
  /// to the OPT estimator of the martingale loop.
  [[nodiscard]] double coverage_fraction() const {
    return total_samples == 0
               ? 0.0
               : static_cast<double>(covered_samples) /
                     static_cast<double>(total_samples);
  }
};

/// Sequential greedy max-coverage over sorted samples.
[[nodiscard]] SelectionResult select_seeds(vertex_t num_vertices,
                                           std::uint32_t k,
                                           std::span<const RRRSet> samples);

/// Algorithm 4: interval-partitioned multithreaded selection.  \p
/// num_threads <= omp_get_max_threads(); the result is identical to the
/// sequential version for any thread count.
[[nodiscard]] SelectionResult
select_seeds_multithreaded(vertex_t num_vertices, std::uint32_t k,
                           std::span<const RRRSet> samples,
                           unsigned num_threads);

/// Baseline selection over dual-direction storage.
[[nodiscard]] SelectionResult
select_seeds_hypergraph(vertex_t num_vertices, std::uint32_t k,
                        const HypergraphCollection &collection);

/// Selection over the arena representation: identical greedy and
/// tie-breaking, counters and retirement walk the flat payload directly.
[[nodiscard]] SelectionResult
select_seeds_flat(vertex_t num_vertices, std::uint32_t k,
                  const FlatRRRCollection &collection);

/// Selection over the compressed representation (DESIGN.md §12): identical
/// greedy and tie-breaking, decode-on-iterate — every kernel pass walks the
/// arena front to back with a cursor, decoding live sets into a scratch
/// buffer and skipping retired ones at continuation-bit-scan cost.
[[nodiscard]] SelectionResult
select_seeds_compressed(vertex_t num_vertices, std::uint32_t k,
                        const CompressedRRRCollection &collection);

/// Lazy-greedy selection (the paper's future-work item "exploitation of
/// problem properties such as submodularity", realized CELF-style at the
/// coverage level): a max-heap of cached counter values replaces the O(n)
/// argmax scan of each greedy round.  Because coverage counters only
/// decrease as samples retire, a popped entry whose cached value still
/// matches the live counter is globally maximal; stale entries are
/// refreshed and reinserted.  Returns exactly the same seeds as
/// select_seeds (identical tie-breaking).
[[nodiscard]] SelectionResult
select_seeds_lazy(vertex_t num_vertices, std::uint32_t k,
                  std::span<const RRRSet> samples);

// ---------------------------------------------------------------------------
// Building blocks shared with the distributed implementation.
// ---------------------------------------------------------------------------

/// Fills \p counters (size n, zeroed by the caller) with the number of
/// samples containing each vertex.
void count_memberships(std::span<const RRRSet> samples,
                       std::span<std::uint32_t> counters);

/// Retires every live sample containing \p seed: marks it in \p retired
/// (one byte per sample — byte granularity so parallel callers can write
/// disjoint entries racelessly), decrements the counters of all its
/// members, and returns how many samples were retired.  `counters[seed]`
/// ends at 0.
std::uint64_t retire_samples_containing(vertex_t seed,
                                        std::span<const RRRSet> samples,
                                        std::span<std::uint32_t> counters,
                                        std::vector<std::uint8_t> &retired);

/// As above, additionally accumulating every decrement into \p pending_dec
/// (a dense per-vertex accumulator; vertices touched for the first time are
/// appended to \p pending_touched).  The sparse selection exchange records
/// retirement deltas this way so a later fallback can synchronize a cached
/// global counter vector by exchanging only the touched entries.
std::uint64_t retire_samples_containing(vertex_t seed,
                                        std::span<const RRRSet> samples,
                                        std::span<std::uint32_t> counters,
                                        std::vector<std::uint8_t> &retired,
                                        std::span<std::uint32_t> pending_dec,
                                        std::vector<vertex_t> &pending_touched);

/// Compressed counterparts of the three kernels above: same counters, same
/// retirement semantics, decode-on-iterate access.  The distributed driver
/// dispatches to these when its budget governor has switched the rank-local
/// partition to the compressed representation.
void count_memberships(const CompressedRRRCollection &collection,
                       std::span<std::uint32_t> counters);

std::uint64_t retire_samples_containing(vertex_t seed,
                                        const CompressedRRRCollection &collection,
                                        std::span<std::uint32_t> counters,
                                        std::vector<std::uint8_t> &retired);

std::uint64_t retire_samples_containing(vertex_t seed,
                                        const CompressedRRRCollection &collection,
                                        std::span<std::uint32_t> counters,
                                        std::vector<std::uint8_t> &retired,
                                        std::span<std::uint32_t> pending_dec,
                                        std::vector<vertex_t> &pending_touched);

/// Smallest-id argmax over the counters, skipping already-selected vertices;
/// if every unselected counter is zero, returns the smallest unselected id.
[[nodiscard]] vertex_t argmax_counter(std::span<const std::uint32_t> counters,
                                      std::span<const std::uint8_t> selected);

// ---------------------------------------------------------------------------
// Sparse selection exchange (distributed top-m argmax; see DESIGN.md §8).
//
// The distributed drivers' dense protocol allreduces the full n-entry
// counter vector once per greedy round.  The sparse protocol instead
// exchanges each rank's best m (vertex, count) pairs plus one word bounding
// everything the rank did *not* report, and certifies the argmax from the
// union when the bound proves no unreported vertex can win.  The kernels
// below are pure (no communication) so the property harness can drive them
// directly against a brute-force oracle.
// ---------------------------------------------------------------------------

/// One (vertex, local-count) pair of a sparse exchange round.  Trivially
/// copyable so mpsim collectives ship arrays of them directly.
struct CounterPair {
  vertex_t vertex;
  std::uint32_t count;
};

/// One rank's round contribution: its best m unselected counters (count
/// descending, ties to the smaller id) and the exact maximum count among
/// the unselected vertices it did not list.  For any unreported unselected
/// vertex v, the rank's local count obeys c_r(v) <= outside_bound.
struct TopmSummary {
  std::vector<CounterPair> top;
  std::uint32_t outside_bound = 0;
};

/// Extracts the top-m summary of one rank's local counters.  Vertices with
/// `selected[v]` set are never reported (they are retired from the greedy).
[[nodiscard]] TopmSummary sparse_topm(std::span<const std::uint32_t> counters,
                                      std::span<const std::uint8_t> selected,
                                      std::uint32_t m);

/// Outcome of merging the gathered per-rank summaries.
///
/// Bound derivation: for candidate v let LB(v) = sum of the counts reported
/// for v (ranks not reporting contribute >= 0) and UB(v) = LB(v) + sum of
/// outside_bound over the ranks that did not report v; a vertex reported by
/// nobody is bounded by T = sum of all outside_bounds.  The candidate v*
/// maximizing (LB, then smallest id) is *certified* as the exact dense
/// argmax iff
///   (i)  every other candidate u has UB(u) < LB(v*), or ties exactly
///        (UB(u) == LB(v*) with both u and v* fully reported, i.e. exact)
///        and v*.id < u.id — the dense tie-break; and
///   (ii) T < LB(v*) — strict, because an unreported vertex of unknown id
///        could otherwise tie and win the smallest-id tie-break.
/// When certified, C(v*) >= LB(v*) > C(u) for every other vertex u (or ties
/// resolved identically to the dense argmax), so the winner is exact.
struct SparseMergeResult {
  /// True when the bound proves `winner` equals the dense argmax,
  /// including the smallest-id tie-break.
  bool certified = false;
  vertex_t winner = 0;
  /// Sorted union of every reported vertex — identical on all ranks, and
  /// the candidate set of the targeted re-reduce fallback.
  std::vector<vertex_t> candidates;
};

[[nodiscard]] SparseMergeResult
sparse_merge(std::span<const TopmSummary> summaries);

/// Second-stage certification after the targeted re-reduce: \p exact_counts
/// holds the exact global count of every candidate (allreduced across
/// ranks) and \p outside_sum the sum over ranks of each rank's exact
/// maximum count outside the candidate set.  The winner (max count, ties to
/// the smaller id) is certified iff its count strictly exceeds
/// \p outside_sum.
struct SparseExactResult {
  bool certified = false;
  vertex_t winner = 0;
};

[[nodiscard]] SparseExactResult
sparse_certify_exact(std::span<const vertex_t> candidates,
                     std::span<const std::uint32_t> exact_counts,
                     std::uint64_t outside_sum);

namespace detail {
/// Selection-exchange instrumentation shared by the mpsim drivers.  All are
/// no-ops unless metrics::enabled().  Words are 4-byte counter units
/// contributed by the calling rank (`imm.select.exchange_words`); sparse
/// rounds, certifications, and the two fallback stages land in
/// `imm.select.sparse_{rounds,certified,candidate_fallbacks,dense_fallbacks}`.
void record_exchange_words(std::uint64_t words);
void record_sparse_round(bool certified);
void record_candidate_fallback();
void record_dense_fallback();
} // namespace detail

} // namespace ripples

#endif // RIPPLES_IMM_SELECT_HPP
