/// \file select.hpp
/// \brief SelectSeeds: greedy maximum-coverage over the RRR sets (Alg. 4).
///
/// Selecting the k vertices covering the most RRR sets is the max-coverage
/// greedy: maintain per-vertex counters of sample membership, repeatedly
/// take the argmax, then retire every sample containing it (those samples
/// can no longer add influence) and decrement the counters of their members.
///
/// Three implementations:
///  * select_seeds            — sequential reference.
///  * select_seeds_multithreaded — Algorithm 4: each thread owns the
///    counters of a vertex interval [vl, vh), so counting and decrementing
///    need no atomics; sorted samples let a thread binary-search directly to
///    its interval inside every sample.
///  * select_seeds_hypergraph  — the baseline's variant that exploits the
///    vertex -> samples index for cheaper retirement at 2x memory.
///
/// The distributed selection (Section 3.2) reuses the counting kernels here
/// around an allreduce; see imm_distributed.cpp.
///
/// Tie-breaking: the smallest vertex id among maxima, in every
/// implementation — the cross-implementation determinism tests rely on it.
#ifndef RIPPLES_IMM_SELECT_HPP
#define RIPPLES_IMM_SELECT_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "imm/rrr_collection.hpp"

namespace ripples {

struct SelectionResult {
  std::vector<vertex_t> seeds;
  std::uint64_t covered_samples = 0;
  std::uint64_t total_samples = 0;

  /// F_R(S): fraction of RRR sets covered by the selected seeds; the input
  /// to the OPT estimator of the martingale loop.
  [[nodiscard]] double coverage_fraction() const {
    return total_samples == 0
               ? 0.0
               : static_cast<double>(covered_samples) /
                     static_cast<double>(total_samples);
  }
};

/// Sequential greedy max-coverage over sorted samples.
[[nodiscard]] SelectionResult select_seeds(vertex_t num_vertices,
                                           std::uint32_t k,
                                           std::span<const RRRSet> samples);

/// Algorithm 4: interval-partitioned multithreaded selection.  \p
/// num_threads <= omp_get_max_threads(); the result is identical to the
/// sequential version for any thread count.
[[nodiscard]] SelectionResult
select_seeds_multithreaded(vertex_t num_vertices, std::uint32_t k,
                           std::span<const RRRSet> samples,
                           unsigned num_threads);

/// Baseline selection over dual-direction storage.
[[nodiscard]] SelectionResult
select_seeds_hypergraph(vertex_t num_vertices, std::uint32_t k,
                        const HypergraphCollection &collection);

/// Selection over the arena representation: identical greedy and
/// tie-breaking, counters and retirement walk the flat payload directly.
[[nodiscard]] SelectionResult
select_seeds_flat(vertex_t num_vertices, std::uint32_t k,
                  const FlatRRRCollection &collection);

/// Lazy-greedy selection (the paper's future-work item "exploitation of
/// problem properties such as submodularity", realized CELF-style at the
/// coverage level): a max-heap of cached counter values replaces the O(n)
/// argmax scan of each greedy round.  Because coverage counters only
/// decrease as samples retire, a popped entry whose cached value still
/// matches the live counter is globally maximal; stale entries are
/// refreshed and reinserted.  Returns exactly the same seeds as
/// select_seeds (identical tie-breaking).
[[nodiscard]] SelectionResult
select_seeds_lazy(vertex_t num_vertices, std::uint32_t k,
                  std::span<const RRRSet> samples);

// ---------------------------------------------------------------------------
// Building blocks shared with the distributed implementation.
// ---------------------------------------------------------------------------

/// Fills \p counters (size n, zeroed by the caller) with the number of
/// samples containing each vertex.
void count_memberships(std::span<const RRRSet> samples,
                       std::span<std::uint32_t> counters);

/// Retires every live sample containing \p seed: marks it in \p retired
/// (one byte per sample — byte granularity so parallel callers can write
/// disjoint entries racelessly), decrements the counters of all its
/// members, and returns how many samples were retired.  `counters[seed]`
/// ends at 0.
std::uint64_t retire_samples_containing(vertex_t seed,
                                        std::span<const RRRSet> samples,
                                        std::span<std::uint32_t> counters,
                                        std::vector<std::uint8_t> &retired);

/// Smallest-id argmax over the counters, skipping already-selected vertices;
/// if every unselected counter is zero, returns the smallest unselected id.
[[nodiscard]] vertex_t argmax_counter(std::span<const std::uint32_t> counters,
                                      std::span<const std::uint8_t> selected);

} // namespace ripples

#endif // RIPPLES_IMM_SELECT_HPP
