/// \file greedy.hpp
/// \brief Pre-RIS baselines: simulation-based greedy and degree heuristics.
///
/// The related-work lineage the paper builds on (Section 2): Kempe et al.'s
/// greedy hill-climbing over a Monte-Carlo influence oracle, Leskovec et
/// al.'s CELF lazy-forward acceleration of it, and Chen et al.'s degree /
/// degree-discount heuristics.  They serve as quality and runtime reference
/// points in the examples and the Figure 1 context bench: CELF matches the
/// (1 - 1/e) greedy on quality but is orders of magnitude slower than IMM,
/// while degree heuristics are fast but carry no guarantee.
#ifndef RIPPLES_IMM_GREEDY_HPP
#define RIPPLES_IMM_GREEDY_HPP

#include <cstdint>
#include <vector>

#include "diffusion/model.hpp"
#include "graph/csr.hpp"

namespace ripples {

struct GreedyOptions {
  std::uint32_t k = 10;
  DiffusionModel model = DiffusionModel::IndependentCascade;
  /// Monte-Carlo trials per influence evaluation (literature default 10000;
  /// far smaller values suffice for the toy graphs this is feasible on).
  std::uint32_t trials = 1000;
  std::uint64_t seed = 2019;
};

/// Kempe et al.'s greedy: k rounds, each evaluating the marginal gain of
/// every remaining vertex by simulation.  O(k n trials m) — the "several
/// hours on modest inputs" baseline of the paper's introduction.
[[nodiscard]] std::vector<vertex_t> monte_carlo_greedy(const CsrGraph &graph,
                                                       const GreedyOptions &options);

/// CELF (Cost-Effective Lazy Forward): identical output distribution to the
/// greedy, but submodularity lets it skip re-evaluations whose stale upper
/// bound already loses to the current best.
[[nodiscard]] std::vector<vertex_t> celf_greedy(const CsrGraph &graph,
                                                const GreedyOptions &options);

/// CELF++ (Goyal et al., WWW'11): CELF plus a look-ahead — each heap entry
/// also caches the marginal gain w.r.t. (S + the current best candidate),
/// so when that candidate is indeed selected next, the entry needs no
/// fresh simulation.  Identical output to celf_greedy; fewer oracle calls.
[[nodiscard]] std::vector<vertex_t> celf_plus_plus(const CsrGraph &graph,
                                                   const GreedyOptions &options);

/// Number of influence-oracle evaluations the last celf*/greedy call made
/// on this thread.  Lets tests and benches verify the laziness hierarchy:
/// plain greedy >= CELF always; CELF++ pays ~2x CELF's initial pass for
/// its look-ahead caches, so its advantage appears in the per-round
/// recompute counts (and overall for larger k).
[[nodiscard]] std::uint64_t last_oracle_evaluations();

/// Top-k vertices by out-degree.
[[nodiscard]] std::vector<vertex_t> top_degree_seeds(const CsrGraph &graph,
                                                     std::uint32_t k);

/// Chen et al.'s DegreeDiscount heuristic for IC with uniform probability
/// \p p: a vertex's effective degree is discounted as its neighbors enter
/// the seed set.
[[nodiscard]] std::vector<vertex_t>
degree_discount_seeds(const CsrGraph &graph, std::uint32_t k, double p);

} // namespace ripples

#endif // RIPPLES_IMM_GREEDY_HPP
