#include "imm/rrr_collection.hpp"

#include <limits>
#include <stdexcept>
#include <string>

namespace ripples {

namespace {

/// Shared growth screen: the collections are grown from theta-derived
/// totals, so a corrupted or absurd request must surface as a catchable
/// diagnostic naming the sizes, not as a bad_alloc (or a silent size_t
/// wrap) deep inside a parallel sampling region.
void check_growth(const char *what, std::size_t current, std::size_t extra,
                  std::size_t limit) {
  if (extra > limit - current)
    throw std::length_error(std::string(what) + " growth overflows: " +
                            std::to_string(current) + " + " +
                            std::to_string(extra) + " exceeds " +
                            std::to_string(limit));
}

} // namespace

std::size_t RRRCollection::grow(std::size_t count) {
  std::size_t first = sets_.size();
  // max_size is the allocator's theoretical ceiling; on overflow of
  // first + count it also catches the size_t wrap.
  check_growth("RRRCollection", first, count, sets_.max_size());
  sets_.resize(first + count);
  return first;
}

void FlatRRRCollection::append(std::span<const vertex_t> members) {
  check_growth("FlatRRRCollection payload", payload_.size(), members.size(),
               payload_.max_size());
  payload_.insert(payload_.end(), members.begin(), members.end());
  offsets_.push_back(payload_.size());
}

std::size_t RRRCollection::footprint_bytes() const {
  std::size_t bytes = sets_.capacity() * sizeof(RRRSet);
  for (const RRRSet &set : sets_) bytes += set.capacity() * sizeof(vertex_t);
  return bytes;
}

std::size_t RRRCollection::total_associations() const {
  std::size_t total = 0;
  for (const RRRSet &set : sets_) total += set.size();
  return total;
}

// --- CompressedRRRCollection ------------------------------------------------

void CompressedRRRCollection::put_varint(std::uint64_t value) {
  while (value >= 0x80) {
    payload_.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  payload_.push_back(static_cast<std::uint8_t>(value));
}

void CompressedRRRCollection::append(std::span<const vertex_t> members) {
  // Worst case: 5 bytes per uint32 varint, plus the count header.
  check_growth("CompressedRRRCollection payload", payload_.size(),
               10 + 5 * members.size(), payload_.max_size());
  if (num_sets_ % kBlockSize == 0) block_offsets_.push_back(payload_.size());
  put_varint(members.size());
  vertex_t previous = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    RIPPLES_DEBUG_ASSERT(i == 0 || members[i] > previous);
    put_varint(i == 0 ? static_cast<std::uint64_t>(members[i])
                      : static_cast<std::uint64_t>(members[i]) - previous);
    previous = members[i];
  }
  ++num_sets_;
  total_associations_ += members.size();
}

std::uint64_t CompressedRRRCollection::Cursor::read_varint() {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (;;) {
    RIPPLES_DEBUG_ASSERT(p_ != end_);
    const std::uint8_t byte = *p_++;
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

std::uint32_t CompressedRRRCollection::Cursor::next_header() {
  return static_cast<std::uint32_t>(read_varint());
}

void CompressedRRRCollection::Cursor::decode_members(
    std::uint32_t count, std::vector<vertex_t> &out) {
  out.clear();
  std::uint64_t value = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    value += read_varint();
    out.push_back(static_cast<vertex_t>(value));
  }
}

void CompressedRRRCollection::Cursor::skip_members(std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    while ((*p_ & 0x80) != 0) ++p_;
    ++p_;
  }
}

void CompressedRRRCollection::decode_set(std::size_t j,
                                         std::vector<vertex_t> &out) const {
  RIPPLES_DEBUG_ASSERT(j < num_sets_);
  Cursor cursor(*this);
  cursor.p_ = payload_.data() + block_offsets_[j / kBlockSize];
  for (std::size_t skip = j % kBlockSize; skip > 0; --skip)
    cursor.skip_members(cursor.next_header());
  cursor.decode_members(cursor.next_header(), out);
}

void HypergraphCollection::add(RRRSet &&set) {
  check_growth("HypergraphCollection sample ids", sets_.size(), 1,
               std::size_t{std::numeric_limits<std::uint32_t>::max()});
  auto sample_id = static_cast<std::uint32_t>(sets_.size());
  for (vertex_t v : set) incidence_[v].push_back(sample_id);
  sets_.push_back(std::move(set));
}

std::size_t HypergraphCollection::footprint_bytes() const {
  std::size_t bytes = sets_.capacity() * sizeof(RRRSet);
  for (const RRRSet &set : sets_) bytes += set.capacity() * sizeof(vertex_t);
  bytes += incidence_.capacity() * sizeof(std::vector<std::uint32_t>);
  for (const auto &list : incidence_)
    bytes += list.capacity() * sizeof(std::uint32_t);
  return bytes;
}

std::size_t HypergraphCollection::total_associations() const {
  std::size_t total = 0;
  for (const RRRSet &set : sets_) total += set.size();
  for (const auto &list : incidence_) total += list.size();
  return total;
}

} // namespace ripples
