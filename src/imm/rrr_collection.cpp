#include "imm/rrr_collection.hpp"

#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>

#include "support/checkpoint.hpp"

namespace ripples {

namespace {

[[nodiscard]] std::uint32_t crc_bytes(const void *data, std::size_t bytes,
                                      std::uint32_t seed = 0) {
  return checkpoint::crc32(
      {static_cast<const std::uint8_t *>(data), bytes}, seed);
}

[[noreturn]] void throw_truncated_block() {
  throw std::runtime_error(
      "CompressedRRRCollection: varint overruns the encoded payload or "
      "exceeds 64 bits (truncated or corrupt block)");
}

} // namespace

namespace {

/// Shared growth screen: the collections are grown from theta-derived
/// totals, so a corrupted or absurd request must surface as a catchable
/// diagnostic naming the sizes, not as a bad_alloc (or a silent size_t
/// wrap) deep inside a parallel sampling region.
void check_growth(const char *what, std::size_t current, std::size_t extra,
                  std::size_t limit) {
  if (extra > limit - current)
    throw std::length_error(std::string(what) + " growth overflows: " +
                            std::to_string(current) + " + " +
                            std::to_string(extra) + " exceeds " +
                            std::to_string(limit));
}

} // namespace

std::size_t RRRCollection::grow(std::size_t count) {
  std::size_t first = sets_.size();
  // max_size is the allocator's theoretical ceiling; on overflow of
  // first + count it also catches the size_t wrap.
  check_growth("RRRCollection", first, count, sets_.max_size());
  sets_.resize(first + count);
  return first;
}

void FlatRRRCollection::append(std::span<const vertex_t> members) {
  check_growth("FlatRRRCollection payload", payload_.size(), members.size(),
               payload_.max_size());
  payload_.insert(payload_.end(), members.begin(), members.end());
  offsets_.push_back(payload_.size());
  if (checksums_) extend_page_crcs();
}

void FlatRRRCollection::enable_checksums() {
  if (checksums_) return;
  checksums_ = true;
  extend_page_crcs();
}

/// Hashes payload bytes [hashed_bytes_, total) into the page structure —
/// CRC chaining lets the open page accumulate across appends and finalize
/// exactly at each kPageBytes boundary.
void FlatRRRCollection::extend_page_crcs() {
  const auto *bytes = reinterpret_cast<const std::uint8_t *>(payload_.data());
  const std::size_t total = payload_.size() * sizeof(vertex_t);
  while (hashed_bytes_ < total) {
    const std::size_t page_end = (page_crcs_.size() + 1) * kPageBytes;
    const std::size_t upto = std::min(total, page_end);
    tail_crc_ = checkpoint::crc32({bytes + hashed_bytes_, upto - hashed_bytes_},
                                  tail_crc_);
    hashed_bytes_ = upto;
    if (hashed_bytes_ == page_end) {
      page_crcs_.push_back(tail_crc_);
      tail_crc_ = 0;
    }
  }
}

std::vector<std::size_t> FlatRRRCollection::verify_pages() const {
  std::vector<std::size_t> corrupt;
  if (!checksums_) return corrupt;
  const auto *bytes = reinterpret_cast<const std::uint8_t *>(payload_.data());
  for (std::size_t page = 0; page < page_crcs_.size(); ++page) {
    if (crc_bytes(bytes + page * kPageBytes, kPageBytes) != page_crcs_[page])
      corrupt.push_back(page);
  }
  const std::size_t tail_begin = page_crcs_.size() * kPageBytes;
  if (tail_begin < hashed_bytes_ &&
      crc_bytes(bytes + tail_begin, hashed_bytes_ - tail_begin) != tail_crc_)
    corrupt.push_back(page_crcs_.size());
  return corrupt;
}

void FlatRRRCollection::flip_payload_bit(std::size_t bit) {
  auto *bytes = reinterpret_cast<std::uint8_t *>(payload_.data());
  const std::size_t total = payload_.size() * sizeof(vertex_t);
  RIPPLES_ASSERT(total > 0);
  bit %= total * 8;
  bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

void FlatRRRCollection::rehash_page(std::size_t page) {
  const auto *bytes = reinterpret_cast<const std::uint8_t *>(payload_.data());
  const std::size_t begin = page * kPageBytes;
  if (page < page_crcs_.size()) {
    page_crcs_[page] = crc_bytes(bytes + begin, kPageBytes);
  } else if (begin < hashed_bytes_) {
    tail_crc_ = crc_bytes(bytes + begin, hashed_bytes_ - begin);
  }
}

void FlatRRRCollection::overwrite(std::size_t offset,
                                  std::span<const vertex_t> values) {
  RIPPLES_ASSERT(offset + values.size() <= payload_.size());
  if (values.empty()) return;
  std::memcpy(payload_.data() + offset, values.data(),
              values.size() * sizeof(vertex_t));
  if (!checksums_) return;
  const std::size_t first_page = offset * sizeof(vertex_t) / kPageBytes;
  const std::size_t last_byte = (offset + values.size()) * sizeof(vertex_t) - 1;
  for (std::size_t page = first_page; page <= last_byte / kPageBytes; ++page)
    rehash_page(page);
}

std::size_t RRRCollection::footprint_bytes() const {
  std::size_t bytes = sets_.capacity() * sizeof(RRRSet);
  for (const RRRSet &set : sets_) bytes += set.capacity() * sizeof(vertex_t);
  return bytes;
}

std::size_t RRRCollection::total_associations() const {
  std::size_t total = 0;
  for (const RRRSet &set : sets_) total += set.size();
  return total;
}

// --- CompressedRRRCollection ------------------------------------------------

void CompressedRRRCollection::put_varint(std::uint64_t value) {
  while (value >= 0x80) {
    payload_.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  payload_.push_back(static_cast<std::uint8_t>(value));
}

void CompressedRRRCollection::encode_record(std::vector<std::uint8_t> &out,
                                            std::span<const vertex_t> members) {
  auto put = [&out](std::uint64_t value) {
    while (value >= 0x80) {
      out.push_back(static_cast<std::uint8_t>(value) | 0x80);
      value >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(value));
  };
  put(members.size());
  vertex_t previous = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    RIPPLES_DEBUG_ASSERT(i == 0 || members[i] > previous);
    put(i == 0 ? static_cast<std::uint64_t>(members[i])
               : static_cast<std::uint64_t>(members[i]) - previous);
    previous = members[i];
  }
}

void CompressedRRRCollection::append(std::span<const vertex_t> members) {
  // Worst case: 5 bytes per uint32 varint, plus the count header.
  check_growth("CompressedRRRCollection payload", payload_.size(),
               10 + 5 * members.size(), payload_.max_size());
  if (num_sets_ % kBlockSize == 0) {
    if (checksums_ && num_sets_ != 0) block_crcs_.push_back(tail_crc_);
    tail_crc_ = 0;
    block_offsets_.push_back(payload_.size());
  }
  const std::size_t start = payload_.size();
  put_varint(members.size());
  vertex_t previous = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    RIPPLES_DEBUG_ASSERT(i == 0 || members[i] > previous);
    put_varint(i == 0 ? static_cast<std::uint64_t>(members[i])
                      : static_cast<std::uint64_t>(members[i]) - previous);
    previous = members[i];
  }
  if (checksums_)
    tail_crc_ =
        crc_bytes(payload_.data() + start, payload_.size() - start, tail_crc_);
  ++num_sets_;
  total_associations_ += members.size();
}

void CompressedRRRCollection::enable_checksums() {
  if (checksums_) return;
  checksums_ = true;
  // Catch up on anything encoded before the switch: one CRC per closed
  // block, the running tail for the open one.
  block_crcs_.clear();
  tail_crc_ = 0;
  for (std::size_t b = 0; b < num_blocks(); ++b) {
    const auto [begin, end] = block_byte_range(b);
    const std::uint32_t crc = crc_bytes(payload_.data() + begin, end - begin);
    if (b + 1 < num_blocks())
      block_crcs_.push_back(crc);
    else
      tail_crc_ = crc;
  }
}

std::vector<std::size_t> CompressedRRRCollection::verify_blocks() const {
  std::vector<std::size_t> corrupt;
  if (!checksums_) return corrupt;
  for (std::size_t b = 0; b < num_blocks(); ++b) {
    const auto [begin, end] = block_byte_range(b);
    if (crc_bytes(payload_.data() + begin, end - begin) != stored_block_crc(b))
      corrupt.push_back(b);
  }
  return corrupt;
}

void CompressedRRRCollection::repair_block(std::size_t b,
                                           std::span<const RRRSet> sets) {
  RIPPLES_ASSERT(b < num_blocks());
  const auto [set_first, set_last] = block_set_range(b);
  if (sets.size() != set_last - set_first)
    throw std::runtime_error(
        "CompressedRRRCollection: repair_block(" + std::to_string(b) +
        ") got " + std::to_string(sets.size()) + " sets for a block of " +
        std::to_string(set_last - set_first));
  const auto [begin, end] = block_byte_range(b);
  std::vector<std::uint8_t> encoded;
  encoded.reserve(end - begin);
  for (const RRRSet &set : sets) encode_record(encoded, set);
  if (encoded.size() != end - begin)
    throw std::runtime_error(
        "CompressedRRRCollection: regenerated block " + std::to_string(b) +
        " re-encodes to " + std::to_string(encoded.size()) +
        " bytes where the stored block holds " + std::to_string(end - begin) +
        " — regeneration was not bit-identical, damage is unrepairable");
  std::memcpy(payload_.data() + begin, encoded.data(), encoded.size());
  const std::uint32_t crc = crc_bytes(payload_.data() + begin, end - begin);
  if (b < block_crcs_.size())
    block_crcs_[b] = crc;
  else
    tail_crc_ = crc;
}

void CompressedRRRCollection::flip_payload_bit(std::size_t bit) {
  RIPPLES_ASSERT(!payload_.empty());
  bit %= payload_.size() * 8;
  payload_[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

std::uint64_t CompressedRRRCollection::Cursor::read_varint() {
  std::uint64_t value = 0;
  unsigned shift = 0;
  for (;;) {
    // Bounds are enforced in release builds too: a truncated or corrupt
    // block must surface as a diagnosed throw, never as a read past the
    // arena (the shift guard catches in-bounds bytes whose continuation
    // bits never terminate).
    if (p_ == end_) throw_truncated_block();
    const std::uint8_t byte = *p_++;
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift >= 64) throw_truncated_block();
  }
}

std::uint32_t CompressedRRRCollection::Cursor::next_header() {
  return static_cast<std::uint32_t>(read_varint());
}

void CompressedRRRCollection::Cursor::decode_members(
    std::uint32_t count, std::vector<vertex_t> &out) {
  out.clear();
  std::uint64_t value = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    value += read_varint();
    out.push_back(static_cast<vertex_t>(value));
  }
}

void CompressedRRRCollection::Cursor::skip_members(std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    while (p_ != end_ && (*p_ & 0x80) != 0) ++p_;
    if (p_ == end_) throw_truncated_block();
    ++p_;
  }
}

void CompressedRRRCollection::decode_set(std::size_t j,
                                         std::vector<vertex_t> &out) const {
  RIPPLES_DEBUG_ASSERT(j < num_sets_);
  Cursor cursor(*this);
  cursor.p_ = payload_.data() + block_offsets_[j / kBlockSize];
  for (std::size_t skip = j % kBlockSize; skip > 0; --skip)
    cursor.skip_members(cursor.next_header());
  cursor.decode_members(cursor.next_header(), out);
}

void HypergraphCollection::add(RRRSet &&set) {
  check_growth("HypergraphCollection sample ids", sets_.size(), 1,
               std::size_t{std::numeric_limits<std::uint32_t>::max()});
  auto sample_id = static_cast<std::uint32_t>(sets_.size());
  for (vertex_t v : set) incidence_[v].push_back(sample_id);
  sets_.push_back(std::move(set));
}

std::size_t HypergraphCollection::footprint_bytes() const {
  std::size_t bytes = sets_.capacity() * sizeof(RRRSet);
  for (const RRRSet &set : sets_) bytes += set.capacity() * sizeof(vertex_t);
  bytes += incidence_.capacity() * sizeof(std::vector<std::uint32_t>);
  for (const auto &list : incidence_)
    bytes += list.capacity() * sizeof(std::uint32_t);
  return bytes;
}

std::size_t HypergraphCollection::total_associations() const {
  std::size_t total = 0;
  for (const RRRSet &set : sets_) total += set.size();
  for (const auto &list : incidence_) total += list.size();
  return total;
}

} // namespace ripples
