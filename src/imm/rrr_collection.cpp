#include "imm/rrr_collection.hpp"

namespace ripples {

std::size_t RRRCollection::footprint_bytes() const {
  std::size_t bytes = sets_.capacity() * sizeof(RRRSet);
  for (const RRRSet &set : sets_) bytes += set.capacity() * sizeof(vertex_t);
  return bytes;
}

std::size_t RRRCollection::total_associations() const {
  std::size_t total = 0;
  for (const RRRSet &set : sets_) total += set.size();
  return total;
}

void HypergraphCollection::add(RRRSet &&set) {
  auto sample_id = static_cast<std::uint32_t>(sets_.size());
  for (vertex_t v : set) incidence_[v].push_back(sample_id);
  sets_.push_back(std::move(set));
}

std::size_t HypergraphCollection::footprint_bytes() const {
  std::size_t bytes = sets_.capacity() * sizeof(RRRSet);
  for (const RRRSet &set : sets_) bytes += set.capacity() * sizeof(vertex_t);
  bytes += incidence_.capacity() * sizeof(std::vector<std::uint32_t>);
  for (const auto &list : incidence_)
    bytes += list.capacity() * sizeof(std::uint32_t);
  return bytes;
}

std::size_t HypergraphCollection::total_associations() const {
  std::size_t total = 0;
  for (const RRRSet &set : sets_) total += set.size();
  for (const auto &list : incidence_) total += list.size();
  return total;
}

} // namespace ripples
