#include "imm/rrr_collection.hpp"

#include <limits>
#include <stdexcept>
#include <string>

namespace ripples {

namespace {

/// Shared growth screen: the collections are grown from theta-derived
/// totals, so a corrupted or absurd request must surface as a catchable
/// diagnostic naming the sizes, not as a bad_alloc (or a silent size_t
/// wrap) deep inside a parallel sampling region.
void check_growth(const char *what, std::size_t current, std::size_t extra,
                  std::size_t limit) {
  if (extra > limit - current)
    throw std::length_error(std::string(what) + " growth overflows: " +
                            std::to_string(current) + " + " +
                            std::to_string(extra) + " exceeds " +
                            std::to_string(limit));
}

} // namespace

std::size_t RRRCollection::grow(std::size_t count) {
  std::size_t first = sets_.size();
  // max_size is the allocator's theoretical ceiling; on overflow of
  // first + count it also catches the size_t wrap.
  check_growth("RRRCollection", first, count, sets_.max_size());
  sets_.resize(first + count);
  return first;
}

void FlatRRRCollection::append(std::span<const vertex_t> members) {
  check_growth("FlatRRRCollection payload", payload_.size(), members.size(),
               payload_.max_size());
  payload_.insert(payload_.end(), members.begin(), members.end());
  offsets_.push_back(payload_.size());
}

std::size_t RRRCollection::footprint_bytes() const {
  std::size_t bytes = sets_.capacity() * sizeof(RRRSet);
  for (const RRRSet &set : sets_) bytes += set.capacity() * sizeof(vertex_t);
  return bytes;
}

std::size_t RRRCollection::total_associations() const {
  std::size_t total = 0;
  for (const RRRSet &set : sets_) total += set.size();
  return total;
}

void HypergraphCollection::add(RRRSet &&set) {
  check_growth("HypergraphCollection sample ids", sets_.size(), 1,
               std::size_t{std::numeric_limits<std::uint32_t>::max()});
  auto sample_id = static_cast<std::uint32_t>(sets_.size());
  for (vertex_t v : set) incidence_[v].push_back(sample_id);
  sets_.push_back(std::move(set));
}

std::size_t HypergraphCollection::footprint_bytes() const {
  std::size_t bytes = sets_.capacity() * sizeof(RRRSet);
  for (const RRRSet &set : sets_) bytes += set.capacity() * sizeof(vertex_t);
  bytes += incidence_.capacity() * sizeof(std::vector<std::uint32_t>);
  for (const auto &list : incidence_)
    bytes += list.capacity() * sizeof(std::uint32_t);
  return bytes;
}

std::size_t HypergraphCollection::total_associations() const {
  std::size_t total = 0;
  for (const RRRSet &set : sets_) total += set.size();
  for (const auto &list : incidence_) total += list.size();
  return total;
}

} // namespace ripples
