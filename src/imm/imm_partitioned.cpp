/// \file imm_partitioned.cpp
/// \brief Graph-partitioned distributed IMM (the paper's future-work item
/// "extension to settings where the input graph is also partitioned").
///
/// Layout: rank r owns vertices [n*r/p, n*(r+1)/p) and their incoming
/// edges.  GenerateRR becomes a distributed level-synchronous reverse BFS:
///
///   1. every rank derives the sample's root from the shared per-sample
///      stream (no communication);
///   2. each level, a rank expands the frontier vertices it owns across
///      their in-edges (IC: every edge fires independently; LT: at most one
///      edge per vertex), producing candidate predecessors anywhere in the
///      graph;
///   3. candidates are exchanged (allgatherv); each rank claims the ones it
///      owns, discards already-visited ones, and they form its next local
///      frontier;
///   4. a scalar allreduce detects global frontier exhaustion.
///
/// Each rank thus accumulates the slice of every RRR set that falls in its
/// vertex interval — which is exactly the data seed selection needs, since
/// Algorithm 4 already partitions counter ownership by vertex interval.
/// Selection reuses the Section 3.2 counter allreduce; sample retirement
/// additionally needs one theta-length flag broadcast from the selected
/// seed's owner, because no rank holds whole samples anymore.
///
/// Randomness: the draws for the in-edges of vertex v in sample i come from
/// a Philox stream keyed by (seed, i, v).  Every edge is examined by
/// exactly one rank (the owner of its head), so the sampled subgraph
/// distribution is exactly the model's, and the realized experiment is
/// independent of p.
#include "imm/imm.hpp"

#include <algorithm>
#include <mutex>
#include <vector>

#include "imm/imm_checkpoint.hpp"
#include "imm/imm_core.hpp"
#include "imm/rrr.hpp"
#include "imm/select.hpp"
#include "mpsim/communicator.hpp"
#include "rng/splitmix.hpp"
#include "support/assert.hpp"
#include "support/trace.hpp"

namespace ripples {

namespace {

/// Stream for the in-edge draws of vertex \p v in sample \p sample_index.
Philox4x32 vertex_stream(std::uint64_t seed, std::uint64_t sample_index,
                         vertex_t v) {
  // Mix the sample index into the key and use the vertex as the stream so
  // (sample, vertex) pairs never share a counter block.
  return Philox4x32(splitmix64_mix(seed ^ (sample_index * 0x9e3779b97f4a7c15ULL)),
                    v);
}

} // namespace

ImmResult imm_distributed_partitioned(const CsrGraph &graph,
                                      const ImmOptions &options) {
  RIPPLES_ASSERT(options.num_ranks >= 1);
  RIPPLES_ASSERT_MSG(options.rng_mode == RngMode::CounterSequence,
                     "the partitioned driver defines randomness per "
                     "(sample, vertex); leap-frog streams do not apply");
  // options.sampler is likewise ignored: the fused engine (DESIGN.md §10)
  // batches 64 whole *samples* per traversal pass, but here no rank ever
  // traverses a whole sample — each level of every sample is a distributed
  // exchange, and edge draws come from per-(sample, vertex) streams rather
  // than the per-sample streams the fused lane layout assumes.  The driver
  // stays on its scalar distributed-BFS kernel in both modes, which the
  // driver_matrix fused axis verifies.

  ImmResult result;
  StopWatch total;
  trace::Span driver_span("imm", "imm_distributed_partitioned", "k", options.k,
                          "ranks", static_cast<std::uint64_t>(options.num_ranks));
  // Bracket the execution so the report carries only this run's volume.
  const mpsim::CommStatsSnapshot comm_before = mpsim::comm_stats();
  detail::MartingaleOutcome report_outcome;
  std::mutex report_mutex; // guards the cross-rank histogram merge
  detail::RoundLedger ledger; // per-rank, per-round phase accounting (v5)

  // The partitioned driver takes the watchdog and fault plan but not
  // recovery: graph slices are not recomputable from RNG coordinates the
  // way sample partitions are, so a rank failure aborts (fail-stop) rather
  // than healing.  ImmOptions::recover_failures is deliberately ignored.
  mpsim::RunOptions run_options;
  run_options.num_ranks = options.num_ranks;
  run_options.watchdog = std::chrono::milliseconds{options.watchdog_ms};
  run_options.faults = mpsim::parse_fault_plan(options.fault_plan);
  // Checksummed exchanges compose with fail-stop: retries still mask
  // transient flips, and exhaustion aborts with the diagnosed corrupter.
  run_options.verify_collectives = options.verify_collectives;

  // Checkpoint/restart (DESIGN.md §9): every sample slice is a pure function
  // of (seed, sample index, vertex) via the per-(sample,vertex) Philox keys,
  // so the snapshot needs no per-rank stream coordinates at all — an empty
  // stream_counts vector and the martingale state fully determine the run.
  detail::DriverCheckpoint ckpt = detail::prepare_driver_checkpoint(
      "imm_distributed_partitioned", graph, options, result);

  mpsim::Context::run(run_options, [&](mpsim::Communicator &comm) {
    const auto p = static_cast<std::uint64_t>(comm.size());
    const auto rank = static_cast<std::uint64_t>(comm.rank());
    const vertex_t n = graph.num_vertices();
    const auto vl = static_cast<vertex_t>(n * rank / p);
    const auto vh = static_cast<vertex_t>(n * (rank + 1) / p);
    // Owner of v: the unique r with n*r/p <= v < n*(r+1)/p.  Start from the
    // estimate r = v*p/n and fix up the integer-division boundary cases.
    auto owner = [&](vertex_t v) -> int {
      auto r = static_cast<std::uint64_t>(v) * p / n;
      while (static_cast<std::uint64_t>(v) <
             static_cast<std::uint64_t>(n) * r / p)
        --r;
      while (static_cast<std::uint64_t>(v) >=
             static_cast<std::uint64_t>(n) * (r + 1) / p)
        ++r;
      return static_cast<int>(r);
    };

    // slices[j] = sorted owned members of sample j.
    std::vector<std::vector<vertex_t>> slices;
    BitVector visited(n); // only bits in [vl, vh) are ever set

    std::vector<vertex_t> local_frontier;
    std::vector<vertex_t> candidates;

    auto generate_sample = [&](std::uint64_t sample_index,
                               std::vector<vertex_t> &slice) {
      slice.clear();
      // Root: same draw on every rank from the shared per-sample stream.
      Philox4x32 root_stream = sample_stream(options.seed, sample_index);
      auto root = static_cast<vertex_t>(uniform_index(root_stream, n));

      local_frontier.clear();
      if (root >= vl && root < vh) {
        visited.set(root);
        slice.push_back(root);
        local_frontier.push_back(root);
      }
      std::uint64_t global_frontier = 1;
      while (global_frontier > 0) {
        candidates.clear();
        for (vertex_t v : local_frontier) {
          Philox4x32 rng = vertex_stream(options.seed, sample_index, v);
          auto in_neighbors = graph.in_neighbors(v);
          if (options.model == DiffusionModel::IndependentCascade) {
            for (const Adjacency &in : in_neighbors)
              if (bernoulli(rng, in.weight)) candidates.push_back(in.vertex);
          } else {
            // LT: at most one incoming live edge per vertex.
            double x = uniform_unit(rng);
            double cumulative = 0.0;
            for (const Adjacency &in : in_neighbors) {
              cumulative += in.weight;
              if (x < cumulative) {
                candidates.push_back(in.vertex);
                break;
              }
            }
          }
        }
        // Exchange candidate predecessors; each rank claims its own.
        std::vector<vertex_t> all_candidates =
            comm.allgatherv(std::span<const vertex_t>(candidates));
        local_frontier.clear();
        for (vertex_t u : all_candidates) {
          if (u < vl || u >= vh) continue;
          if (!visited.test_and_set(u)) continue; // already a member
          slice.push_back(u);
          local_frontier.push_back(u);
        }
        std::uint64_t frontier_size[1] = {local_frontier.size()};
        comm.allreduce(std::span<std::uint64_t>(frontier_size, 1),
                       mpsim::ReduceOp::Sum);
        global_frontier = frontier_size[0];
      }
      for (vertex_t v : slice) visited.clear(v);
      std::sort(slice.begin(), slice.end());
    };

    auto extend_to = [&](std::uint64_t target) {
      std::uint64_t first = slices.size();
      if (target <= first) return;
      trace::Span batch_span("sampler", "sampler.dist_batch", "first", first,
                             "count", target - first);
      slices.resize(target);
      for (std::uint64_t i = first; i < target; ++i)
        generate_sample(i, slices[i]);
      trace::counter("rrr_sets", slices.size());

      std::uint64_t footprint[2] = {0, 0};
      for (const auto &slice : slices) {
        footprint[0] += slice.capacity() * sizeof(vertex_t) +
                        sizeof(std::vector<vertex_t>);
        footprint[1] += slice.size();
      }
      comm.allreduce(std::span<std::uint64_t>(footprint, 2),
                     mpsim::ReduceOp::Sum);
      if (comm.rank() == 0) {
        result.rrr_peak_bytes =
            std::max(result.rrr_peak_bytes, static_cast<std::size_t>(footprint[0]));
        result.total_associations = std::max(
            result.total_associations, static_cast<std::size_t>(footprint[1]));
      }
    };

    std::vector<std::uint32_t> local_counts(n);
    std::vector<std::uint32_t> global_counts(n);
    auto select = [&]() -> SelectionResult {
      trace::Span span("select", "select.partitioned", "k", options.k,
                       "samples", slices.size());
      // Count memberships over the owned slices (only indices in [vl, vh)
      // are ever touched).
      std::fill(local_counts.begin(), local_counts.end(), 0);
      for (const auto &slice : slices)
        for (vertex_t v : slice) ++local_counts[v];

      std::vector<std::uint8_t> retired(slices.size(), 0);
      std::vector<std::uint8_t> selected(n, 0);
      std::vector<std::uint8_t> contains(slices.size(), 0);

      // Sparse exchange is *always exact* here: counter ownership is
      // vertex-partitioned, so rank r's local count of an owned vertex IS
      // its global count and every other rank's is zero.  One (vertex,
      // count) pair per rank — each interval's best by (count, smallest
      // id) — determines the dense argmax with no bound or fallback; the
      // sentinel vertex n flags an interval with nothing unselected.
      const bool sparse =
          options.selection_exchange == SelectionExchange::Sparse;
      auto sparse_round = [&]() -> vertex_t {
        CounterPair best{n, 0};
        for (vertex_t v = vl; v < vh; ++v) {
          if (selected[v]) continue;
          if (best.vertex == n || local_counts[v] > best.count ||
              (local_counts[v] == best.count && v < best.vertex))
            best = {v, local_counts[v]};
        }
        detail::record_exchange_words(2);
        const std::vector<CounterPair> bests = comm.allgather(best);
        CounterPair winner{n, 0};
        for (const CounterPair &b : bests) {
          if (b.vertex == n) continue;
          if (winner.vertex == n || b.count > winner.count ||
              (b.count == winner.count && b.vertex < winner.vertex))
            winner = b;
        }
        RIPPLES_ASSERT_MSG(winner.vertex != n,
                           "k exceeds the number of vertices");
        detail::record_sparse_round(/*certified=*/true);
        return winner.vertex;
      };

      SelectionResult selection;
      selection.total_samples = slices.size();
      for (std::uint32_t i = 0; i < options.k; ++i) {
        trace::Span round("select", "select.round", "round", i);
        vertex_t seed;
        if (sparse) {
          seed = sparse_round();
        } else {
          std::copy(local_counts.begin(), local_counts.end(),
                    global_counts.begin());
          comm.allreduce(std::span<std::uint32_t>(global_counts),
                         mpsim::ReduceOp::Sum);
          detail::record_exchange_words(n);
          seed = argmax_counter(global_counts, selected);
        }
        selected[seed] = 1;
        selection.seeds.push_back(seed);

        // Only the seed's owner knows which samples contain it; broadcast
        // the containment flags (the extra communication graph
        // partitioning costs: theta bytes per round).
        const int seed_owner = owner(seed);
        if (comm.rank() == seed_owner) {
          for (std::size_t j = 0; j < slices.size(); ++j)
            contains[j] =
                !retired[j] &&
                std::binary_search(slices[j].begin(), slices[j].end(), seed);
        }
        comm.broadcast(std::span<std::uint8_t>(contains), seed_owner);

        for (std::size_t j = 0; j < slices.size(); ++j) {
          if (!contains[j]) continue;
          retired[j] = 1;
          ++selection.covered_samples;
          for (vertex_t u : slices[j]) {
            RIPPLES_DEBUG_ASSERT(local_counts[u] > 0);
            --local_counts[u];
          }
        }
      }
      return selection;
    };

    auto round_hook = [&](const detail::MartingaleProgress &progress) {
      if (!ckpt.enabled() || comm.rank() != 0)
        return;
      ckpt.manager->observe(
          detail::snapshot_from_progress(ckpt.fingerprint, progress, {}),
          progress.accepted);
    };

    PhaseTimers timers;
    detail::RoundAccounting acct{&ledger, comm.world_rank(), [&] {
      std::uint64_t bytes = 0;
      for (const auto &slice : slices)
        bytes += slice.capacity() * sizeof(vertex_t) +
                 sizeof(std::vector<vertex_t>);
      return std::pair<std::uint64_t, std::uint64_t>(slices.size(), bytes);
    }};
    auto outcome = detail::run_imm_martingale(
        n, options.k, options.epsilon, options.l, extend_to, select, timers,
        ckpt.resume_progress(), round_hook, acct);
    if (comm.rank() == 0) {
      result.seeds = outcome.selection.seeds;
      result.theta = outcome.theta;
      result.num_samples = outcome.num_samples;
      result.lower_bound = outcome.lower_bound;
      result.coverage_fraction = outcome.selection.coverage_fraction();
      result.timers = timers;
      report_outcome = std::move(outcome);
    }

    // No rank holds whole samples here: each slice is the fragment of a
    // sample falling in this rank's vertex interval, so the merged
    // histogram describes *fragment* sizes, not whole-sample sizes.
    metrics::HistogramData local_sizes;
    for (const auto &slice : slices) local_sizes.record(slice.size());
    {
      std::lock_guard<std::mutex> lock(report_mutex);
      result.report.rrr_sizes.merge(local_sizes);
    }
  });

  result.timers.add(Phase::Other,
                    total.elapsed_seconds() - result.timers.total());
  result.report.collectives = mpsim::comm_stats().since(comm_before).nonzero();
  result.report.rounds = ledger.entries();
  detail::finalize_run_report(result, "imm_distributed_partitioned", graph,
                              options, report_outcome);
  return result;
}

} // namespace ripples
