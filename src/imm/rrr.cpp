#include "imm/rrr.hpp"

#include "rng/lcg.hpp"
#include "rng/xoshiro.hpp"

namespace ripples {

// Explicit instantiations for the engines the library uses, keeping the
// template bodies out of every includer's object file.
template void RRRGenerator::generate<Philox4x32>(vertex_t, DiffusionModel,
                                                 Philox4x32 &, RRRSet &);
template void RRRGenerator::generate<Lcg64>(vertex_t, DiffusionModel, Lcg64 &,
                                            RRRSet &);
template void RRRGenerator::generate<Xoshiro256>(vertex_t, DiffusionModel,
                                                 Xoshiro256 &, RRRSet &);
template void
RRRGenerator::generate_random_root<Philox4x32>(DiffusionModel, Philox4x32 &,
                                               RRRSet &);
template void RRRGenerator::generate_random_root<Lcg64>(DiffusionModel, Lcg64 &,
                                                        RRRSet &);
template void
RRRGenerator::generate_random_root<Xoshiro256>(DiffusionModel, Xoshiro256 &,
                                               RRRSet &);

} // namespace ripples
