#include "imm/greedy.hpp"

#include <algorithm>
#include <queue>

#include "diffusion/simulate.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"

namespace ripples {

namespace {

thread_local std::uint64_t g_oracle_calls = 0;

double influence_of(const CsrGraph &graph, const std::vector<vertex_t> &seeds,
                    const GreedyOptions &options) {
  if (seeds.empty()) return 0.0;
  ++g_oracle_calls;
  if (metrics::enabled()) {
    static metrics::Counter &evaluations =
        metrics::Registry::instance().counter("greedy.oracle_evaluations");
    evaluations.increment();
  }
  return estimate_influence(graph, seeds, options.model, options.trials,
                            options.seed)
      .mean;
}

} // namespace

std::uint64_t last_oracle_evaluations() { return g_oracle_calls; }

std::vector<vertex_t> monte_carlo_greedy(const CsrGraph &graph,
                                         const GreedyOptions &options) {
  RIPPLES_ASSERT(options.k >= 1 && options.k <= graph.num_vertices());
  g_oracle_calls = 0;
  std::vector<vertex_t> seeds;
  std::vector<std::uint8_t> selected(graph.num_vertices(), 0);
  double current = 0.0;
  std::vector<vertex_t> candidate;
  for (std::uint32_t round = 0; round < options.k; ++round) {
    vertex_t best = graph.num_vertices();
    double best_gain = -1.0;
    for (vertex_t v = 0; v < graph.num_vertices(); ++v) {
      if (selected[v]) continue;
      candidate = seeds;
      candidate.push_back(v);
      double gain = influence_of(graph, candidate, options) - current;
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    selected[best] = 1;
    seeds.push_back(best);
    current += best_gain;
  }
  return seeds;
}

std::vector<vertex_t> celf_greedy(const CsrGraph &graph,
                                  const GreedyOptions &options) {
  RIPPLES_ASSERT(options.k >= 1 && options.k <= graph.num_vertices());
  g_oracle_calls = 0;

  struct Entry {
    double gain;
    vertex_t vertex;
    std::uint32_t evaluated_at; ///< |S| when `gain` was computed
  };
  auto worse = [](const Entry &a, const Entry &b) {
    // Max-heap by gain; ties to smaller id for determinism.
    return a.gain < b.gain || (a.gain == b.gain && a.vertex > b.vertex);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> heap(worse);

  // Initial pass: sigma({v}) for every vertex.
  for (vertex_t v = 0; v < graph.num_vertices(); ++v) {
    std::vector<vertex_t> single{v};
    heap.push({influence_of(graph, single, options), v, 0});
  }

  std::vector<vertex_t> seeds;
  double current = 0.0;
  std::vector<vertex_t> candidate;
  while (seeds.size() < options.k) {
    Entry top = heap.top();
    heap.pop();
    if (top.evaluated_at == seeds.size()) {
      // Fresh bound: by submodularity no other vertex can beat it.
      seeds.push_back(top.vertex);
      current += top.gain;
    } else {
      candidate = seeds;
      candidate.push_back(top.vertex);
      top.gain = influence_of(graph, candidate, options) - current;
      top.evaluated_at = static_cast<std::uint32_t>(seeds.size());
      heap.push(top);
    }
  }
  return seeds;
}

std::vector<vertex_t> celf_plus_plus(const CsrGraph &graph,
                                     const GreedyOptions &options) {
  RIPPLES_ASSERT(options.k >= 1 && options.k <= graph.num_vertices());
  g_oracle_calls = 0;

  // Entry caches two marginal gains: mg1 w.r.t. the current seed set S and
  // mg2 w.r.t. S + prev_best, where prev_best was the best candidate seen
  // when the entry was evaluated.  If prev_best is selected next, mg2 is
  // the fresh gain for free (Goyal et al.'s look-ahead).
  struct Entry {
    double mg1;
    double mg2;
    vertex_t vertex;
    vertex_t prev_best;
    std::uint32_t evaluated_at;
  };
  auto worse = [](const Entry &a, const Entry &b) {
    return a.mg1 < b.mg1 || (a.mg1 == b.mg1 && a.vertex > b.vertex);
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> heap(worse);

  const vertex_t kNone = graph.num_vertices();
  // Initial pass: sigma({v}) for all v; mg2 w.r.t. the best candidate seen
  // so far (exact look-ahead would need sigma({best, v}); the standard
  // implementation evaluates it lazily on first use, which we do too by
  // marking mg2 unknown via prev_best = kNone when no best existed yet).
  vertex_t running_best = kNone;
  double running_best_gain = -1.0;
  for (vertex_t v = 0; v < graph.num_vertices(); ++v) {
    std::vector<vertex_t> single{v};
    double mg1 = influence_of(graph, single, options);
    double mg2 = -1.0;
    vertex_t prev_best = running_best;
    if (running_best != kNone) {
      std::vector<vertex_t> pair{running_best, v};
      double joint = influence_of(graph, pair, options);
      mg2 = joint - running_best_gain;
    }
    heap.push({mg1, mg2, v, prev_best, 0});
    if (mg1 > running_best_gain) {
      running_best_gain = mg1;
      running_best = v;
    }
  }

  std::vector<vertex_t> seeds;
  double current = 0.0;
  vertex_t last_seed = kNone;
  std::vector<vertex_t> candidate;
  while (seeds.size() < options.k) {
    Entry top = heap.top();
    heap.pop();
    if (top.evaluated_at == seeds.size()) {
      seeds.push_back(top.vertex);
      current += top.mg1;
      last_seed = top.vertex;
      continue;
    }
    if (top.prev_best == last_seed && top.evaluated_at + 1 == seeds.size() &&
        top.mg2 >= 0.0) {
      // Look-ahead hit: the cached mg2 is exactly the fresh gain.
      top.mg1 = top.mg2;
    } else {
      candidate = seeds;
      candidate.push_back(top.vertex);
      top.mg1 = influence_of(graph, candidate, options) - current;
      // Refresh the look-ahead against the current front-runner, but only
      // when the front-runner's own gain is fresh for the current S —
      // otherwise sigma(S + prev_best) below would be stale and the
      // shortcut could mis-rank later.
      if (!heap.empty() && heap.top().evaluated_at == seeds.size()) {
        top.prev_best = heap.top().vertex;
        candidate = seeds;
        candidate.push_back(top.prev_best);
        candidate.push_back(top.vertex);
        double with_best_gain = heap.top().mg1;
        top.mg2 = influence_of(graph, candidate, options) -
                  (current + with_best_gain);
      } else {
        top.prev_best = kNone;
        top.mg2 = -1.0;
      }
    }
    top.evaluated_at = static_cast<std::uint32_t>(seeds.size());
    heap.push(top);
  }
  return seeds;
}

std::vector<vertex_t> top_degree_seeds(const CsrGraph &graph, std::uint32_t k) {
  RIPPLES_ASSERT(k >= 1 && k <= graph.num_vertices());
  std::vector<vertex_t> order(graph.num_vertices());
  for (vertex_t v = 0; v < graph.num_vertices(); ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](vertex_t a, vertex_t b) {
                      std::size_t da = graph.out_degree(a), db = graph.out_degree(b);
                      return da > db || (da == db && a < b);
                    });
  order.resize(k);
  return order;
}

std::vector<vertex_t> degree_discount_seeds(const CsrGraph &graph,
                                            std::uint32_t k, double p) {
  RIPPLES_ASSERT(k >= 1 && k <= graph.num_vertices());
  const vertex_t n = graph.num_vertices();
  std::vector<double> discounted(n);
  std::vector<std::uint32_t> selected_neighbors(n, 0);
  std::vector<std::uint8_t> selected(n, 0);
  for (vertex_t v = 0; v < n; ++v)
    discounted[v] = static_cast<double>(graph.out_degree(v));

  std::vector<vertex_t> seeds;
  seeds.reserve(k);
  for (std::uint32_t i = 0; i < k; ++i) {
    vertex_t best = n;
    for (vertex_t v = 0; v < n; ++v) {
      if (selected[v]) continue;
      if (best == n || discounted[v] > discounted[best] ||
          (discounted[v] == discounted[best] && v < best))
        best = v;
    }
    selected[best] = 1;
    seeds.push_back(best);
    // Discount the neighbors of the new seed (Chen et al., Alg. DegreeDiscountIC).
    for (const Adjacency &out : graph.out_neighbors(best)) {
      vertex_t v = out.vertex;
      if (selected[v]) continue;
      auto d = static_cast<double>(graph.out_degree(v));
      auto t = static_cast<double>(++selected_neighbors[v]);
      discounted[v] = d - 2.0 * t - (d - t) * t * p;
    }
  }
  return seeds;
}

} // namespace ripples
