#include "imm/sampler_fused.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <omp.h>

#include "rng/distributions.hpp"
#include "support/assert.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace ripples {

namespace {

/// Same registry account the scalar engines feed, so fused and sequential
/// runs are comparable on one counter.
void count_generated(std::uint64_t batch) {
  if (!metrics::enabled()) return;
  static metrics::Counter &generated =
      metrics::Registry::instance().counter("sampler.samples_generated");
  generated.add(batch);
}

/// Fused-kernel instrumentation: distinct lane-mask words touched and
/// frontier passes executed.  Accumulated per FusedSampler and flushed once
/// per engine call (once per worker in the OpenMP variants) to keep atomic
/// traffic off the traversal.
void flush_fused_counters(const FusedSampler &sampler) {
  if (!metrics::enabled()) return;
  static metrics::Counter &words =
      metrics::Registry::instance().counter("sampler.fused.words");
  static metrics::Counter &passes =
      metrics::Registry::instance().counter("sampler.fused.passes");
  words.add(sampler.words_touched());
  passes.add(sampler.passes());
}

} // namespace

FusedSampler::FusedSampler(const CsrGraph &graph)
    : graph_(graph), visited_(graph.num_vertices()),
      touched_(graph.num_vertices() + 1) {
  const std::uint64_t n = graph.num_vertices();
  thresholds_.resize(graph.num_edges());
  packed_edges_.resize(graph.num_edges());
  for (vertex_t v = 0; v < n; ++v) {
    auto in_neighbors = graph.in_neighbors(v);
    const std::size_t row_begin = graph.in_offsets()[v];
    for (std::size_t j = 0; j < in_neighbors.size(); ++j) {
      const auto threshold = static_cast<std::uint64_t>(
          std::ceil(static_cast<double>(in_neighbors[j].weight) * 0x1.0p53));
      thresholds_[row_begin + j] = threshold;
      packed_edges_[row_begin + j] =
          ((threshold >> 22) << 32) | in_neighbors[j].vertex;
    }
  }
}

std::size_t FusedSampler::lane_bytes(const CsrGraph &graph) {
  const std::size_t n = graph.num_vertices();
  const std::size_t m = graph.num_edges();
  return n * sizeof(std::uint64_t)            // visited_ lane masks
         + (n + 1) * sizeof(vertex_t)         // touched_
         + m * sizeof(std::uint64_t) * 2;     // thresholds_ + packed_edges_
}

void FusedSampler::generate(DiffusionModel model, std::uint64_t seed,
                            std::span<const std::uint64_t> sample_indices,
                            RRRSet *outs) {
  const auto lanes = static_cast<unsigned>(sample_indices.size());
  RIPPLES_ASSERT(lanes >= 1 && lanes <= kLanes);
  const std::uint64_t n = graph_.num_vertices();
  touched_len_ = 0;
  for (unsigned l = 0; l < lanes; ++l) {
    // The stream construction of sample_stream(seed, i): counter_hi 0 is
    // reserved for forward simulation, so sample i draws from i + 1.
    rng_[l].reset(seed, sample_indices[l] + 1);
    auto root = static_cast<vertex_t>(uniform_index(rng_[l], n));
    if (visited_.set_first(root, l)) touched_[touched_len_++] = root;
    if (model == DiffusionModel::IndependentCascade) {
      // run_ic emits the whole sorted set (root included) from the lane
      // masks at the end, so outs is not touched during the traversal.
      frontier_[l].ensure(1);
      frontier_[l].data[0] = root;
      frontier_[l].len = 1;
    } else {
      outs[l].clear();
      outs[l].push_back(root);
      current_[l] = root;
    }
  }
  if (model == DiffusionModel::IndependentCascade) {
    run_ic(lanes, outs);
  } else {
    run_lt(lanes, outs);
    for (unsigned l = 0; l < lanes; ++l)
      std::sort(outs[l].begin(), outs[l].end());
  }
  words_ += touched_len_;
  // Reset only the touched words: one clear serves all 64 lanes, where the
  // scalar engines clear per-sample bit lists.
  for (std::size_t t = 0; t < touched_len_; ++t)
    visited_.clear_word(touched_[t]);
}

void FusedSampler::run_ic(unsigned lanes, RRRSet *outs) {
  // Level-synchronous across lanes, but *within* a lane the frontier is
  // scanned in exactly the scalar engine's discovery order and every edge
  // decision consumes the lane's next stream draw — which is why the
  // per-lane output is byte-identical to RRRGenerator::reverse_bfs_ic.
  // Interleaving lanes per level is free because lanes never share draws.
  //
  // The edge loop is branchless: the Bernoulli outcome is an unpredictable
  // coin flip, so the scalar engine pays a branch misprediction on nearly
  // every live edge.  Here each edge decision is a straight-line masked
  // sequence — the draw index advances only past unvisited targets (peek/
  // consume on the bulk-refilled buffer, preserving the scalar engine's
  // exact draw positions), the Bernoulli test is one integer compare
  // against the precomputed threshold, and the visited word, next
  // frontier, and touched list all append by masked increment.
  std::array<std::size_t, kLanes> counts;
  for (unsigned l = 0; l < lanes; ++l) counts[l] = 1; // the root
  // Everything the edge loop touches lives in locals and raw pointers:
  // member accesses through `this` cannot be register-allocated once the
  // loop stores through uint64_t pointers (the visited words), and a
  // memory round trip on the touched length would serialize every edge.
  vertex_t *touched = touched_.data();
  std::size_t touched_len = touched_len_;
  std::uint64_t *vis = visited_.word_data();
  const std::uint64_t *thresholds = thresholds_.data();
  const std::uint64_t *packed = packed_edges_.data();
  const edge_offset_t *offsets = graph_.in_offsets().data();
  std::uint64_t passes = 0;
  for (;;) {
    bool any = false;
    for (unsigned l = 0; l < lanes; ++l) {
      FrontierBuffer &frontier = frontier_[l];
      if (frontier.len == 0) continue;
      any = true;
      FrontierBuffer &next = next_[l];
      BufferedPhilox &rng = rng_[l];
      // One next-frontier reservation per pass (worst case: every scanned
      // edge hits), so the masked appends below never need a capacity
      // branch.  Summing the rows up front costs two cache-hot loads per
      // frontier vertex and removes all bookkeeping from the edge loop.
      std::size_t pass_edges = 0;
      for (std::size_t fi = 0; fi < frontier.len; ++fi) {
        const vertex_t v = frontier.data[fi];
        pass_edges += offsets[v + 1] - offsets[v];
      }
      next.len = 0;
      next.ensure(pass_edges);
      vertex_t *next_base = next.data.get();
      vertex_t *next_ptr = next_base;
      vertex_t *touched_ptr = touched + touched_len;
      // Draws are consumed lazily from the peeked buffer: one
      // availability check per row, one consume per refill, instead of a
      // peek/consume pair per row.  consume() never moves buffered data,
      // so the pointer stays valid until the next peek.
      const std::uint64_t *draws = nullptr;
      std::size_t avail = 0;
      std::size_t used = 0;
      for (std::size_t fi = 0; fi < frontier.len; ++fi) {
        const vertex_t v = frontier.data[fi];
        const std::size_t row_begin = offsets[v];
        const std::size_t total = offsets[v + 1] - row_begin;
        for (std::size_t off = 0; off < total;) {
          const std::size_t chunk =
              std::min(total - off, BufferedPhilox::capacity());
          if (avail - used < chunk) {
            rng.consume(used);
            draws = rng.peek(chunk);
            avail = rng.buffered();
            used = 0;
          }
          // Moving pointers instead of base+index pairs: the loop body
          // has to keep every live value in registers to stay stall-free.
          const std::uint64_t *draw_ptr = draws + used;
          const std::uint64_t *edge = packed + row_begin + off;
          const std::uint64_t *edge_end = edge + chunk;
          for (; edge != edge_end; ++edge) {
            const std::uint64_t pk = *edge;
            const auto u = static_cast<vertex_t>(pk);
            const std::uint64_t word = vis[u];
            const std::uint64_t unvisited = ((word >> l) & 1) ^ 1;
            const std::uint64_t x = *draw_ptr;
            draw_ptr += unvisited;
            // Exactly uniform_unit(rng) < weight: almost every draw is
            // decided by the packed high-threshold compare; the ~2^-31
            // ties fall back to the full 54-bit threshold (the branch is
            // never-taken in practice, and harmless when the target is
            // visited — hit is masked by unvisited either way).
            std::uint64_t below = (x >> 33) < (pk >> 32);
            if (__builtin_expect((x >> 33) == (pk >> 32), 0))
              below = (x >> 11) < thresholds[edge - packed];
            const std::uint64_t hit = unvisited & below;
            vis[u] = word | (hit << l);
            *touched_ptr = u;
            touched_ptr += hit & static_cast<std::uint64_t>(word == 0);
            *next_ptr = u;
            next_ptr += hit;
          }
          used = static_cast<std::size_t>(draw_ptr - draws);
          off += chunk;
        }
      }
      rng.consume(used);
      touched_len = static_cast<std::size_t>(touched_ptr - touched);
      const auto next_len = static_cast<std::size_t>(next_ptr - next_base);
      counts[l] += next_len;
      next.len = next_len;
      std::swap(frontier, next);
    }
    if (!any) break;
    ++passes;
  }
  touched_len_ = touched_len;
  passes_ += passes;
  emit_sorted(lanes, counts.data(), outs);
}

void FusedSampler::emit_sorted(unsigned lanes, const std::size_t *counts,
                               RRRSet *outs) {
  // The visited lane masks already hold every set: bit l of word v says
  // "lane l's set contains v".  Walking the words in ascending vertex
  // order therefore emits each lane's set already sorted — one shared
  // counting pass instead of 64 std::sorts.  Byte-identical to the scalar
  // engine's sort because both produce the ascending list of the same
  // distinct vertices.
  std::array<vertex_t *, kLanes> out_ptr;
  std::array<std::size_t, kLanes> out_pos;
  for (unsigned l = 0; l < lanes; ++l) {
    outs[l].resize(counts[l]);
    out_ptr[l] = outs[l].data();
    out_pos[l] = 0;
  }
  const std::uint64_t n = graph_.num_vertices();
  auto emit_word = [&](vertex_t v, std::uint64_t word) {
    while (word != 0) {
      const unsigned l = static_cast<unsigned>(__builtin_ctzll(word));
      word &= word - 1;
      out_ptr[l][out_pos[l]++] = v;
    }
  };
  if (touched_len_ * 8 >= n) {
    // Dense batch: the touched list covers most of the graph, so the
    // straight scan is cheaper than sorting it.
    for (vertex_t v = 0; v < n; ++v) emit_word(v, visited_.word(v));
  } else {
    std::sort(touched_.begin(),
              touched_.begin() + static_cast<std::ptrdiff_t>(touched_len_));
    for (std::size_t t = 0; t < touched_len_; ++t) {
      const vertex_t v = touched_[t];
      emit_word(v, visited_.word(v));
    }
  }
  for (unsigned l = 0; l < lanes; ++l)
    RIPPLES_DEBUG_ASSERT(out_pos[l] == counts[l]);
}

void FusedSampler::run_lt(unsigned lanes, RRRSet *outs) {
  // Each pass advances every live reverse walk by one step; a lane's draw
  // order (one uniform per step, consumed before the cumulative scan) is
  // exactly RRRGenerator::reverse_walk_lt's.
  std::uint64_t active =
      lanes == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;
  while (active != 0) {
    ++passes_;
    for (unsigned l = 0; l < lanes; ++l) {
      if (((active >> l) & 1) == 0) continue;
      auto in_neighbors = graph_.in_neighbors(current_[l]);
      if (in_neighbors.empty()) {
        active &= ~(std::uint64_t{1} << l);
        continue;
      }
      double x = uniform_unit(rng_[l]);
      double cumulative = 0.0;
      vertex_t selected = current_[l]; // sentinel: nothing selected
      for (const Adjacency &in : in_neighbors) {
        cumulative += in.weight;
        if (x < cumulative) {
          selected = in.vertex;
          break;
        }
      }
      if (selected == current_[l] || visited_.test(selected, l)) {
        active &= ~(std::uint64_t{1} << l);
        continue;
      }
      if (visited_.set_first(selected, l)) touched_[touched_len_++] = selected;
      outs[l].push_back(selected);
      current_[l] = selected;
    }
  }
}

void sample_sequential_fused(const CsrGraph &graph, DiffusionModel model,
                             std::uint64_t target_total, std::uint64_t seed,
                             RRRCollection &collection) {
  if (collection.size() >= target_total) return;
  trace::Span span("sampler", "sampler.batch_fused", "first",
                   collection.size(), "count",
                   target_total - collection.size());
  std::uint64_t first = collection.grow(target_total - collection.size());
  auto &sets = collection.mutable_sets();
  FusedSampler sampler(graph);
  std::array<std::uint64_t, FusedSampler::kLanes> indices;
  for (std::uint64_t base = first; base < target_total;
       base += FusedSampler::kLanes) {
    const auto lanes = static_cast<unsigned>(std::min<std::uint64_t>(
        FusedSampler::kLanes, target_total - base));
    for (unsigned l = 0; l < lanes; ++l) indices[l] = base + l;
    sampler.generate(model, seed, std::span(indices.data(), lanes),
                     &sets[base]);
  }
  span.arg("passes", sampler.passes());
  count_generated(target_total - first);
  flush_fused_counters(sampler);
  trace::counter("rrr_sets", collection.size());
}

void sample_multithreaded_fused(const CsrGraph &graph, DiffusionModel model,
                                std::uint64_t target_total, std::uint64_t seed,
                                unsigned num_threads,
                                RRRCollection &collection) {
  RIPPLES_ASSERT(num_threads >= 1);
  if (collection.size() >= target_total) return;
  trace::Span span("sampler", "sampler.batch_fused", "first",
                   collection.size(), "count",
                   target_total - collection.size());
  std::uint64_t first = collection.grow(target_total - collection.size());
  auto &sets = collection.mutable_sets();
  const std::uint64_t count = target_total - first;
  const auto num_blocks = static_cast<std::int64_t>(
      (count + FusedSampler::kLanes - 1) / FusedSampler::kLanes);
#pragma omp parallel num_threads(static_cast<int>(num_threads))
  {
    FusedSampler sampler(graph);
    trace::Span worker("sampler", "sampler.worker_fused");
    std::array<std::uint64_t, FusedSampler::kLanes> indices;
    std::uint64_t generated = 0;
    // Dynamic schedule over whole lane blocks: fused batches inherit the
    // heavy tail of per-sample traversal cost 64 samples at a time.
#pragma omp for schedule(dynamic, 1) nowait
    for (std::int64_t b = 0; b < num_blocks; ++b) {
      std::uint64_t base =
          first + static_cast<std::uint64_t>(b) * FusedSampler::kLanes;
      const auto lanes = static_cast<unsigned>(std::min<std::uint64_t>(
          FusedSampler::kLanes, target_total - base));
      for (unsigned l = 0; l < lanes; ++l) indices[l] = base + l;
      sampler.generate(model, seed, std::span(indices.data(), lanes),
                       &sets[base]);
      generated += lanes;
    }
    worker.arg("sets", generated);
    flush_fused_counters(sampler);
  }
  count_generated(count);
  trace::counter("rrr_sets", collection.size());
}

std::uint64_t sample_counter_indices_fused(
    const CsrGraph &graph, DiffusionModel model, std::uint64_t seed,
    std::span<const std::uint64_t> indices, unsigned num_threads,
    RRRCollection &collection) {
  RIPPLES_ASSERT(num_threads >= 1);
  if (indices.empty()) return 0;
  std::uint64_t first_slot = collection.grow(indices.size());
  auto &sets = collection.mutable_sets();
  const auto num_blocks = static_cast<std::int64_t>(
      (indices.size() + FusedSampler::kLanes - 1) / FusedSampler::kLanes);
#pragma omp parallel num_threads(static_cast<int>(num_threads))
  {
    FusedSampler sampler(graph);
#pragma omp for schedule(dynamic, 1)
    for (std::int64_t b = 0; b < num_blocks; ++b) {
      const std::size_t j =
          static_cast<std::size_t>(b) * FusedSampler::kLanes;
      const std::size_t lanes =
          std::min<std::size_t>(FusedSampler::kLanes, indices.size() - j);
      sampler.generate(model, seed, indices.subspan(j, lanes),
                       &sets[first_slot + j]);
    }
    flush_fused_counters(sampler);
  }
  count_generated(indices.size());
  return indices.size();
}

} // namespace ripples
