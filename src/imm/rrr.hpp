/// \file rrr.hpp
/// \brief GenerateRR: random reverse reachable set construction (Alg. 3).
///
/// A random reverse reachable (RRR) set for root v is the set of vertices
/// that reach v in a graph g sampled from G by the diffusion model
/// (Definitions 2-3).  As in the paper, g is never materialized: the reverse
/// BFS decides each incoming edge probabilistically as the traversal
/// reaches it.  The insertion policy differs per model:
///
///  * IC: every incoming edge (u -> v) of a traversed vertex v is live
///    independently with probability p(u -> v); all live in-neighbors join
///    the frontier.
///  * LT: each traversed vertex selects AT MOST ONE incoming edge, edge
///    (u -> v) with probability b(u -> v) and none with the residual
///    probability (the live-edge formulation of Linear Threshold); the
///    reverse walk is therefore a path, which is why the paper observes
///    "very small RRR sets" under LT.
///
/// The returned vertex list is sorted by id — the representation invariant
/// the seed-selection kernels rely on for binary search and cache-ordered
/// interval scans (Section 3.1).
#ifndef RIPPLES_IMM_RRR_HPP
#define RIPPLES_IMM_RRR_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "diffusion/model.hpp"
#include "graph/csr.hpp"
#include "rng/distributions.hpp"
#include "rng/philox.hpp"
#include "support/bitvector.hpp"

namespace ripples {

/// One RRR set: sorted, duplicate-free vertex ids, always containing the
/// root.
using RRRSet = std::vector<vertex_t>;

/// Reusable GenerateRR kernel.  Holds the visited bitmap and frontier
/// scratch so repeated calls allocate nothing; one instance per thread.
class RRRGenerator {
public:
  explicit RRRGenerator(const CsrGraph &graph)
      : graph_(graph), visited_(graph.num_vertices()) {}

  /// Generates the RRR set for \p root into \p out (cleared first).
  template <typename Engine>
  void generate(vertex_t root, DiffusionModel model, Engine &rng, RRRSet &out);

  /// Convenience: root chosen uniformly at random, then generate.
  template <typename Engine>
  void generate_random_root(DiffusionModel model, Engine &rng, RRRSet &out);

private:
  template <typename Engine>
  void reverse_bfs_ic(vertex_t root, Engine &rng, RRRSet &out);
  template <typename Engine>
  void reverse_walk_lt(vertex_t root, Engine &rng, RRRSet &out);

  const CsrGraph &graph_;
  BitVector visited_;
  std::vector<vertex_t> frontier_;
  std::vector<vertex_t> next_;
};

/// The Philox stream for global sample index \p index of an experiment
/// keyed by \p seed.  Centralized so every sampling engine (sequential,
/// OpenMP, distributed) draws sample i from the same stream, making the
/// collection R independent of the degree of parallelism.
[[nodiscard]] inline Philox4x32 sample_stream(std::uint64_t seed,
                                              std::uint64_t index) {
  // counter_hi 0 is reserved for forward simulation; offset by 1.
  return Philox4x32(seed, index + 1);
}

// ---------------------------------------------------------------------------
// Template implementations.
// ---------------------------------------------------------------------------

template <typename Engine>
void RRRGenerator::generate(vertex_t root, DiffusionModel model, Engine &rng,
                            RRRSet &out) {
  RIPPLES_DEBUG_ASSERT(root < graph_.num_vertices());
  out.clear();
  if (model == DiffusionModel::IndependentCascade)
    reverse_bfs_ic(root, rng, out);
  else
    reverse_walk_lt(root, rng, out);
  // Reset only the touched bits: out holds exactly the visited vertices.
  for (vertex_t v : out) visited_.clear(v);
  std::sort(out.begin(), out.end());
}

template <typename Engine>
void RRRGenerator::generate_random_root(DiffusionModel model, Engine &rng,
                                        RRRSet &out) {
  auto root = static_cast<vertex_t>(uniform_index(rng, graph_.num_vertices()));
  generate(root, model, rng, out);
}

template <typename Engine>
void RRRGenerator::reverse_bfs_ic(vertex_t root, Engine &rng, RRRSet &out) {
  visited_.set(root);
  out.push_back(root);
  frontier_.clear();
  frontier_.push_back(root);
  while (!frontier_.empty()) {
    next_.clear();
    for (vertex_t v : frontier_) {
      for (const Adjacency &in : graph_.in_neighbors(v)) {
        if (visited_.test(in.vertex)) continue;
        if (!bernoulli(rng, in.weight)) continue;
        visited_.set(in.vertex);
        out.push_back(in.vertex);
        next_.push_back(in.vertex);
      }
    }
    frontier_.swap(next_);
  }
}

template <typename Engine>
void RRRGenerator::reverse_walk_lt(vertex_t root, Engine &rng, RRRSet &out) {
  visited_.set(root);
  out.push_back(root);
  vertex_t current = root;
  for (;;) {
    auto in_neighbors = graph_.in_neighbors(current);
    if (in_neighbors.empty()) break;
    // Select at most one incoming live edge: x lands either inside the
    // cumulative weight mass of one edge (weights sum to <= 1 after LT
    // renormalization) or in the residual "no edge" mass.
    double x = uniform_unit(rng);
    double cumulative = 0.0;
    vertex_t selected = current; // sentinel: nothing selected
    for (const Adjacency &in : in_neighbors) {
      cumulative += in.weight;
      if (x < cumulative) {
        selected = in.vertex;
        break;
      }
    }
    if (selected == current) break;      // residual mass: walk ends
    if (visited_.test(selected)) break;  // reached a cycle
    visited_.set(selected);
    out.push_back(selected);
    current = selected;
  }
}

} // namespace ripples

#endif // RIPPLES_IMM_RRR_HPP
