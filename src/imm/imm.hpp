/// \file imm.hpp
/// \brief The four IMM drivers of the paper (Algorithm 1 end to end).
///
///  * imm_baseline_hypergraph — "IMM": the Tang et al. style implementation
///    with dual-direction RRR storage (Table 2 baseline).
///  * imm_sequential          — "IMMOPT": the paper's optimized serial
///    implementation with compact sorted-sample storage.
///  * imm_multithreaded       — "IMM_mt": OpenMP sampling + Algorithm 4
///    interval-partitioned selection.
///  * imm_distributed         — "IMM_dist": hybrid ranks x threads over the
///    mpsim runtime (Section 3.2): replicated graph, evenly partitioned
///    sample generation, allreduce-based seed selection.
///
/// Every driver runs the same martingale estimation (Alg. 2), returns the
/// phase-decomposed timings the paper's figures plot, and — given the same
/// (seed, epsilon, k, model) and the default CounterSequence rng mode —
/// the exact same seed set, which the integration tests assert.
#ifndef RIPPLES_IMM_IMM_HPP
#define RIPPLES_IMM_IMM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "diffusion/model.hpp"
#include "graph/csr.hpp"
#include "imm/budget.hpp"
#include "mpsim/integrity.hpp"
#include "support/checkpoint.hpp"
#include "support/metrics.hpp"
#include "support/timer.hpp"

namespace ripples {

/// Parallel random-number discipline of the distributed sampler.
enum class RngMode {
  /// Per-sample Philox streams indexed by the global sample id: R is
  /// invariant to the rank/thread count (the library default).
  CounterSequence,
  /// The paper's scheme: one global LCG sequence, leap-frog split across
  /// ranks (rank r consumes subsequence r, r+p, r+2p, ...).  R depends on p
  /// only through which rank produced which sample; the consumed random
  /// numbers are a prefix of the one global stream.
  LeapfrogLcg,
};

/// Seed-selection exchange protocol of the mpsim drivers (Section 3.2's
/// allreduce vs. the sparse top-m protocol of DESIGN.md §8).  Both produce
/// bit-identical seed sets; sparse trades the per-round n-word allreduce for
/// top-m candidate pairs plus bound words, falling back to targeted dense
/// exchanges only when the bound cannot certify the argmax.
enum class SelectionExchange {
  Dense,
  Sparse,
};

/// Reads RIPPLES_SELECTION_EXCHANGE ("sparse" selects Sparse; anything else
/// — including unset — selects Dense), mirroring the RIPPLES_METRICS /
/// RIPPLES_FAULTS idiom so test legs can flip the protocol without touching
/// call sites.
[[nodiscard]] SelectionExchange selection_exchange_from_env();

/// RRR-generation engine (DESIGN.md §10).  Both engines draw sample i from
/// the Philox stream (seed, i) and produce byte-identical collections; Fused
/// batches up to 64 samples per traversal pass over a shared per-vertex
/// lane-mask array with bulk counter-block generation, trading per-sample
/// control flow for word-level parallelism.
enum class SamplerEngine {
  Sequential,
  Fused,
};

/// Reads RIPPLES_SAMPLER ("fused" selects Fused; anything else — including
/// unset — selects Sequential), the same idiom as
/// selection_exchange_from_env so check.sh can rerun the whole suite under
/// the fused engine without touching call sites.
[[nodiscard]] SamplerEngine sampler_engine_from_env();

/// Work-stealing scope of the sampling phase (DESIGN.md §13).  Because the
/// counter-mode RNG derives each draw from its global stream index, moving a
/// chunk between executors cannot change the emitted bytes — stealing is a
/// pure placement knob, byte-identical on vs. off.  Requires
/// RngMode::CounterSequence; the leapfrog mode silently keeps its pinned
/// placement (tests assert the no-op).  Inter-rank stealing additionally
/// requires the ungoverned path (budget admission windows are rank-local).
enum class StealMode {
  /// No stealing: every draw runs where the static partition homed it.
  Off,
  /// Threads within a rank steal chunks from each other's queues.
  Intra,
  /// Ranks donate their chunk list to the mpsim steal channel and any rank
  /// may execute any chunk.
  Inter,
  /// Both levels (the `--steal on` setting).
  On,
};

/// Reads RIPPLES_STEAL ("on", "intra", "inter"; anything else — including
/// unset — selects Off), same idiom as sampler_engine_from_env.
[[nodiscard]] StealMode steal_mode_from_env();

[[nodiscard]] const char *to_string(StealMode mode);

/// Reads RIPPLES_STEAL_CHUNK (draws per chunk; 0/unset/garbage selects the
/// default of 64 — one fused batch per chunk).
[[nodiscard]] std::uint64_t steal_chunk_from_env();

/// Reads RIPPLES_STEAL_SKEW ("1"/"on" enables).
[[nodiscard]] bool steal_skew_from_env();

struct ImmOptions {
  double epsilon = 0.5;
  std::uint32_t k = 50;
  DiffusionModel model = DiffusionModel::IndependentCascade;
  std::uint64_t seed = 2019;
  /// Failure-probability exponent: guarantee holds with prob >= 1 - 1/n^l.
  double l = 1.0;
  /// OpenMP threads (imm_multithreaded; also threads per rank when > 1 in
  /// imm_distributed, matching the paper's hybrid MPI+OpenMP layout).
  unsigned num_threads = 1;
  /// mpsim ranks (imm_distributed only).
  int num_ranks = 1;
  RngMode rng_mode = RngMode::CounterSequence;
  /// RRR-generation engine; byte-identical results either way (DESIGN.md
  /// §10), so this is a pure performance knob like num_threads.  Defaults
  /// from RIPPLES_SAMPLER.  Fused applies to the counter-stream engines
  /// (sequential, multithreaded, distributed); the LeapfrogLcg rng mode and
  /// the partitioned driver keep their scalar kernels (documented there).
  SamplerEngine sampler = sampler_engine_from_env();

  // Fault tolerance (the mpsim drivers; see DESIGN.md failure model).
  /// Survive rank failures: survivors shrink the communicator, regenerate
  /// the dead ranks' sample partitions from their RNG stream coordinates,
  /// and finish with the bit-identical seed set of a failure-free run
  /// (imm_distributed only; other drivers ignore it).
  bool recover_failures = false;
  /// Per-collective watchdog deadline in milliseconds; 0 disables.  A
  /// stalled rank then surfaces as mpsim::CollectiveTimeout naming the
  /// site and laggard instead of hanging the run.
  std::uint32_t watchdog_ms = 0;
  /// Deterministic fault plan, `rank=R,site=N[,kind=crash|stall|oom][;...]`
  /// (see mpsim/fault.hpp).  Empty means faults only from RIPPLES_FAULTS.
  /// `kind=oom` entries are consumed by the memory-budget governor rather
  /// than the communicator (DESIGN.md §12).
  std::string fault_plan;
  /// Treat watchdog-detected stalls as failures: the detecting rank evicts
  /// the laggards through the RankFailed -> shrink() -> heal path instead of
  /// only diagnosing them.  Requires recover_failures and watchdog_ms > 0
  /// (imm_distributed only; other drivers ignore it).
  bool evict_stalled = false;

  // Durable checkpoint/restart (the mpsim drivers; see DESIGN.md §9).
  /// Snapshot directory, write stride, resume flag, retention.  An empty
  /// dir disables checkpointing; defaults come from RIPPLES_CHECKPOINT_*.
  checkpoint::Options checkpoint = checkpoint::options_from_env();

  // Seed-selection exchange (the mpsim drivers; see DESIGN.md §8).
  /// Dense counter allreduce vs. sparse top-m exchange; defaults from
  /// RIPPLES_SELECTION_EXCHANGE.  Other drivers ignore it.
  SelectionExchange selection_exchange = selection_exchange_from_env();
  /// Candidates each rank reports per sparse round (m).  Larger m means
  /// fewer fallbacks but more words per round; 16 certifies nearly every
  /// round on the paper's benchmark graphs.
  std::uint32_t selection_topm = 16;

  // Memory-pressure resilience (DESIGN.md §12).
  /// Enforced RRR reservation budget in bytes, 0 = unlimited; defaults from
  /// RIPPLES_MEM_BUDGET (`--mem-budget` in imm_cli).  A finite budget (or a
  /// kind=oom fault, or rrr_compress == Always) routes RRR storage through
  /// the budget governor; otherwise the drivers keep their ungoverned path.
  /// The baseline-hypergraph and partitioned drivers stay ungoverned: the
  /// former *is* Table 2's memory-hungry reference, the latter stores
  /// per-rank sample slices whose budget story is future work.
  std::size_t mem_budget = mem_budget_from_env();
  /// When the governor may switch to the compressed RRR representation;
  /// defaults from RIPPLES_RRR_COMPRESS (`--rrr-compress` in imm_cli).
  CompressMode rrr_compress = compress_mode_from_env();

  // Work-stealing sampler (DESIGN.md §13).
  /// Steal scope (`--steal`); defaults from RIPPLES_STEAL.  A placement
  /// knob only — seeds/theta/|R|/coverage are byte-identical in every mode
  /// and under every steal schedule (stealing_test sweeps them).  Counter
  /// rng mode only; imm_distributed is the consumer (Intra/On chunk the
  /// in-rank sampling loop, Inter/On additionally donate chunks to the
  /// mpsim steal channel); the other drivers ignore the knob.
  StealMode steal = steal_mode_from_env();
  /// Draws per stealable chunk (`--steal-chunk`); defaults from
  /// RIPPLES_STEAL_CHUNK, 0 is clamped to 1.
  std::uint64_t steal_chunk = steal_chunk_from_env();
  /// Test/benchmark knob (`--steal-skew`): home every stream's generation
  /// on the first live rank, manufacturing the fig7 pathological partition.
  /// With stealing off this is the worst-case baseline; with inter stealing
  /// on, thieves spread the same draws — byte-identical seeds either way.
  /// Counter mode, imm_distributed, ungoverned path only.
  bool steal_skew = steal_skew_from_env();

  // End-to-end data integrity (DESIGN.md §14).
  /// Checksum every collective payload, mailbox message, and steal-channel
  /// item (`--verify-collectives`); a mismatch is retried against the
  /// sender's still-live buffer with capped exponential backoff and
  /// escalates to the shrink-and-heal path when the budget exhausts, so the
  /// healed run's seeds equal a failure-free run's exactly.  Defaults from
  /// RIPPLES_VERIFY_COLLECTIVES; imm_distributed only (the shared-memory
  /// drivers have no exchanges to checksum).
  bool verify_collectives = mpsim::verify_collectives_from_env();
  /// RRR-store scrubbing (`--scrub-rrr off|on|paranoid`); defaults from
  /// RIPPLES_SCRUB_RRR.  Applies to the budget-governed store's compressed
  /// arena in counter rng mode (replayable coordinates); elsewhere it is a
  /// silent no-op, the stealing/fused-engine precedent.
  ScrubMode scrub_rrr = scrub_mode_from_env();
};

struct ImmResult {
  std::vector<vertex_t> seeds;
  /// The final sample-count estimate theta = lambda* / LB.
  std::uint64_t theta = 0;
  /// |R| actually generated (>= theta when estimation overshot).
  std::uint64_t num_samples = 0;
  /// The martingale lower bound on OPT.
  double lower_bound = 0;
  /// F_R(S) of the final selection.
  double coverage_fraction = 0;
  /// Phase breakdown in the paper's four categories.
  PhaseTimers timers;
  /// Peak bytes held by the RRR representation (Table 2's memory metric).
  std::size_t rrr_peak_bytes = 0;
  /// Total (sample, vertex) associations stored at peak.
  std::size_t total_associations = 0;
  /// Martingale round this run resumed from (`next_round` of the snapshot),
  /// or -1 for a fresh (non-resumed) run.
  std::int64_t resumed_from = -1;
  /// True when the memory budget forced a certified early stop: the seeds
  /// are a valid IMM answer at accuracy `epsilon_achieved` (>= the requested
  /// epsilon) rather than the requested one (DESIGN.md §12).
  bool degraded = false;
  /// The accuracy actually certified by the samples generated: equals the
  /// requested epsilon on a non-degraded run, the certified_epsilon()
  /// value on a degraded one.
  double epsilon_achieved = 0;
  /// Structured record of this execution (metrics subsystem): phase times,
  /// theta schedule, RRR-size histogram, storage footprint, per-collective
  /// communication volume.  Serialize with report.write_json_file(path).
  metrics::RunReport report;
};

[[nodiscard]] ImmResult imm_sequential(const CsrGraph &graph,
                                       const ImmOptions &options);
[[nodiscard]] ImmResult imm_baseline_hypergraph(const CsrGraph &graph,
                                                const ImmOptions &options);
[[nodiscard]] ImmResult imm_multithreaded(const CsrGraph &graph,
                                          const ImmOptions &options);
[[nodiscard]] ImmResult imm_distributed(const CsrGraph &graph,
                                        const ImmOptions &options);

/// Extension (paper §6, future work i): distributed IMM where the *input
/// graph* is partitioned across ranks in addition to the samples.  Rank r
/// owns the contiguous vertex interval [n*r/p, n*(r+1)/p) and the in-edges
/// of those vertices; every RRR set is generated by a level-synchronous
/// distributed reverse BFS (frontier candidates are exchanged with an
/// allgatherv per level) and stored as per-rank slices.  Seed selection
/// keeps the counter allreduce of Section 3.2 plus one theta-length
/// containment broadcast per selected seed (the price of nobody holding a
/// whole sample).
///
/// Edge draws use per-(sample, vertex) counter streams, so the result is
/// invariant to the rank count — but it is a different (equally valid)
/// random experiment than the sample-indexed streams of the other drivers,
/// so seed sets match imm_distributed_partitioned runs at any p, not
/// imm_sequential.  The graph argument is shared for simplicity; ranks
/// only ever read the in-edges of vertices they own, which is the slice a
/// real deployment would store.
[[nodiscard]] ImmResult imm_distributed_partitioned(const CsrGraph &graph,
                                                    const ImmOptions &options);

namespace detail {
struct MartingaleOutcome;

/// Fills the RunReport fields every driver shares (configuration, input
/// shape, phase times, theta schedule, storage, selection, seeds) from the
/// finalized ImmResult, and appends the report to the process-wide report
/// log when metrics are enabled.  Drivers record the RRR-size histogram and
/// communication stats themselves before calling this, since those depend
/// on the storage representation and execution layout.
void finalize_run_report(ImmResult &result, const char *driver,
                         const CsrGraph &graph, const ImmOptions &options,
                         const MartingaleOutcome &outcome);
} // namespace detail

} // namespace ripples

#endif // RIPPLES_IMM_IMM_HPP
