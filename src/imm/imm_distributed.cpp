/// \file imm_distributed.cpp
/// \brief IMM_dist: the hybrid distributed implementation (Section 3.2).
///
/// Layout, as in the paper: every rank holds the whole input graph and owns
/// a partition R_i of the samples; sample generation is evenly split (rank
/// r produces the global sample indices congruent to r mod p); seed
/// selection keeps an n-entry counter array per rank, aggregated with an
/// All-Reduce once per greedy round, after which choosing the seed and
/// purging the local partition are rank-local operations.  The dominant
/// communication is therefore the k All-Reduce operations per selection.
///
/// Sparse selection exchange (ImmOptions::selection_exchange, DESIGN.md §8)
/// replaces that per-round n-word allreduce with the three-stage protocol
/// built from the kernels in select.hpp: (1) allgather each rank's top-m
/// (vertex, count) pairs plus one outside-bound word and certify the argmax
/// from the merged union; (2) on bound failure, a targeted allreduce of
/// just the candidate union plus one outside word; (3) as a last resort, a
/// dense exchange against a cached global counter vector kept current with
/// retirement *deltas* (allgatherv of only the touched counters) instead of
/// a full re-reduce.  Every stage decides from identically gathered data,
/// so all ranks take the same branch and the seed sequence — including the
/// smallest-id tie-break — is bit-identical to the dense protocol's.
///
/// Self-healing (ImmOptions::recover_failures): because every sample is
/// addressed by an RNG stream coordinate — leap-frog stream r of the one
/// global LCG sequence, or the per-index Philox counter stream — a dead
/// rank's partition is a *recomputable* function of (seed, stream, count),
/// not unique state.  When a collective raises mpsim::RankFailed the
/// survivors shrink the communicator, deterministically re-assign the dead
/// ranks' streams among themselves (round-robin over the dense survivor
/// order, replayed identically on every rank), regenerate the lost samples
/// bit-for-bit, and restart the martingale loop.  The restart is cheap and
/// safe by construction: extend_to() is a no-op for already-reached targets
/// and select() recomputes its counters from the local collection on every
/// call, so the replayed run makes exactly the decisions of a failure-free
/// run and returns the identical seed set.
#include "imm/imm.hpp"

#include <algorithm>
#include <mutex>
#include <omp.h>
#include <optional>
#include <vector>

#include "imm/imm_checkpoint.hpp"
#include "imm/imm_core.hpp"
#include "imm/sampler.hpp"
#include "imm/sampler_fused.hpp"
#include "imm/select.hpp"
#include "imm/steal.hpp"
#include "mpsim/communicator.hpp"
#include "rng/lcg.hpp"
#include "support/assert.hpp"
#include "support/steal_schedule.hpp"
#include "support/trace.hpp"

namespace ripples {

namespace {

metrics::Counter &regen_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("imm.regen.rrr_sets");
  return c;
}

metrics::Counter &stolen_chunks_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("imm.steal.chunks_stolen");
  return c;
}

metrics::Counter &stolen_sets_counter() {
  static metrics::Counter &c =
      metrics::Registry::instance().counter("imm.steal.sets_stolen");
  return c;
}

/// Counter-mode generation at explicit global indices, honoring the
/// engine knob: the fused kernel batches 64 per-sample streams per
/// traversal pass and is byte-identical to the scalar path (DESIGN.md
/// §10), so both the extend and heal paths can dispatch through here.
/// The LeapfrogLcg mode is inherently sequential per stream (one shared
/// LCG walked draw by draw) and keeps the scalar kernel.
/// \p governed additionally routes the fused engine's per-thread lane
/// structures through the budget (consumer "sampler.fused_lanes"),
/// falling back to the byte-identical scalar kernel when refused —
/// DESIGN.md §12's fused-lane rung.
std::uint64_t generate_counter_indices(const CsrGraph &graph,
                                       const ImmOptions &options,
                                       std::span<const std::uint64_t> indices,
                                       RRRCollection &collection,
                                       bool governed = false) {
  // Intra-rank stealing (DESIGN.md §13): route multi-threaded generation
  // through the chunked per-thread queues.  Byte-identical to the unchunked
  // kernels — every position writes its pre-grown slot — so the dispatch is
  // placement-only, exactly like the fused/scalar engine choice.
  const bool intra =
      (options.steal == StealMode::Intra || options.steal == StealMode::On) &&
      options.num_threads > 1;
  if (options.sampler == SamplerEngine::Fused) {
    if (!governed) {
      if (intra)
        return detail::sample_counter_chunked(
            graph, options.model, options.seed, indices, options.num_threads,
            options.steal_chunk, /*fused=*/true, collection);
      return sample_counter_indices_fused(graph, options.model, options.seed,
                                          indices, options.num_threads,
                                          collection);
    }
    const std::size_t lane_bytes =
        FusedSampler::lane_bytes(graph) * options.num_threads;
    if (MemoryTracker::instance().try_reserve(lane_bytes,
                                              "sampler.fused_lanes")) {
      const std::uint64_t generated =
          intra ? detail::sample_counter_chunked(
                      graph, options.model, options.seed, indices,
                      options.num_threads, options.steal_chunk, /*fused=*/true,
                      collection)
                : sample_counter_indices_fused(graph, options.model,
                                               options.seed, indices,
                                               options.num_threads, collection);
      MemoryTracker::instance().release(lane_bytes);
      return generated;
    }
  }
  if (intra)
    return detail::sample_counter_chunked(graph, options.model, options.seed,
                                          indices, options.num_threads,
                                          options.steal_chunk, /*fused=*/false,
                                          collection);
  return sample_counter_indices(graph, options.model, options.seed, indices,
                                options.num_threads, collection);
}

} // namespace

ImmResult imm_distributed(const CsrGraph &graph, const ImmOptions &options) {
  RIPPLES_ASSERT(options.num_ranks >= 1);
  RIPPLES_ASSERT(options.num_threads >= 1);
  RIPPLES_ASSERT_MSG(options.rng_mode == RngMode::CounterSequence ||
                         options.num_threads == 1,
                     "leap-frog LCG streams are per-rank sequential; use one "
                     "thread per rank or CounterSequence mode");

  ImmResult result;
  StopWatch total;
  trace::Span driver_span("imm", "imm_distributed", "k", options.k, "ranks",
                          static_cast<std::uint64_t>(options.num_ranks));
  // Bracket the execution so the report carries only this run's volume.
  const mpsim::CommStatsSnapshot comm_before = mpsim::comm_stats();
  detail::MartingaleOutcome report_outcome;
  std::mutex report_mutex; // guards the cross-rank histogram merge
  detail::RoundLedger ledger; // per-rank, per-round phase accounting (v5)

  mpsim::RunOptions run_options;
  run_options.num_ranks = options.num_ranks;
  run_options.recover = options.recover_failures;
  run_options.watchdog = std::chrono::milliseconds{options.watchdog_ms};
  run_options.evict_stalled = options.evict_stalled;
  run_options.faults = mpsim::parse_fault_plan(options.fault_plan);
  run_options.verify_collectives = options.verify_collectives;

  // Memory governance (DESIGN.md §12): the budget and kind=oom plan are
  // process-wide (ranks are threads sharing one MemoryTracker); fault sites
  // count per rank via the trace rank, so a plan can starve one rank while
  // its peers keep reserving — the heal-composition scenario.
  detail::ScopedBudget budget(options.mem_budget, options.rrr_compress,
                              detail::oom_faults_from_plan(options.fault_plan));

  // Checkpoint/restart (DESIGN.md §9): the martingale state is replicated —
  // every rank reaches each round boundary with identical progress — so the
  // dense rank 0 alone snapshots it, together with the per-stream sample
  // counts that let a fresh process regenerate every partition.
  detail::DriverCheckpoint ckpt =
      detail::prepare_driver_checkpoint("imm_distributed", graph, options,
                                        result);

  mpsim::Context::run(run_options, [&](mpsim::Communicator &comm) {
    // The sample index space is partitioned by *world* coordinates for the
    // whole run: stream s (s in [0, p)) owns the global indices congruent
    // to s mod p, where p is the launch-time rank count.  Healing changes
    // which rank *holds* a stream, never the stream structure itself —
    // that invariance is what keeps R, and hence the seed set, identical
    // across failure scenarios.
    const int p = comm.world_size();
    const auto stride = static_cast<std::uint64_t>(p);
    const vertex_t n = graph.num_vertices();

    RRRCollection local; // union of the streams this rank currently holds
    // Governed alternative to `local` (budget, forced compression, or oom
    // faults): every admission is budget-charged, and refusal — after the
    // compress and shed rungs — is a *hard* MemoryBudgetExceeded here
    // rather than a certified early stop, because a rank-local truncation
    // would silently break the cross-rank agreement on |R|.  The refusing
    // rank flushes pending checkpoint snapshots first and, under
    // --recover, dies like any other failed rank: survivors whose
    // reservations still succeed adopt its streams and continue.
    std::optional<detail::RRRStore> store;
    if (budget.governed()) {
      detail::RRRStore::Policy policy;
      policy.budget_bytes = options.mem_budget;
      policy.compress = options.rrr_compress;
      policy.hard_refusal = true;
      policy.consumer = "imm_distributed.rrr";
      // Counter coordinates are replayable, leapfrog engines are not —
      // scrub follows the same counter-mode-only rule as stealing.
      policy.scrub = options.rng_mode == RngMode::CounterSequence
                         ? options.scrub_rrr
                         : ScrubMode::Off;
      store.emplace(policy);
    }
    auto local_size = [&] { return store ? store->size() : local.size(); };
    auto local_footprint = [&] {
      return store ? store->footprint_bytes() : local.footprint_bytes();
    };
    auto local_assoc = [&] {
      return store ? store->total_associations() : local.total_associations();
    };
    std::uint64_t global_count = 0;
    // The in-flight window's target: global_count only advances once a
    // window completes, so when a failure surfaces *mid-window* (the steal
    // drain loop can throw RankFailed the moment a thief's retry budget
    // exhausts against a corrupted queue, long before the footprint
    // allreduce) this records how far the interrupted window meant to go —
    // healing completes the window instead of letting the replay re-execute
    // chunks the survivors already hold.
    std::uint64_t window_target = 0;

    // The streams this rank holds, each with its leap-frog engine
    // positioned at the stream's next unsampled index (the engine is
    // unused in counter mode, where every index is independently
    // addressable).  Initially: exactly this rank's own stream.
    struct OwnedStream {
      std::uint64_t stream;
      Lcg64 engine;
    };
    std::vector<OwnedStream> owned;
    owned.push_back({static_cast<std::uint64_t>(comm.world_rank()),
                     Lcg64::leapfrog_stream(
                         options.seed,
                         static_cast<std::uint64_t>(comm.world_rank()),
                         stride)});

    // stream -> world rank currently holding it.  Every rank maintains the
    // full map by replaying the same shrink events with the same
    // deterministic re-assignment rule, so all survivors agree on who
    // regenerates what without any extra communication.
    std::vector<int> stream_owner(static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) stream_owner[static_cast<std::size_t>(s)] = s;

    // Work-stealing placement (DESIGN.md §13).  Every knob requires the
    // index-addressable counter streams — under LeapfrogLcg the one global
    // LCG is walked draw by draw per stream, so stealing and skew are
    // silent no-ops there (stealing_test pins this, the fused-engine
    // precedent).  Inter stealing and skew additionally require the
    // ungoverned path: budget admission windows are rank-local, so a
    // migrated chunk would be charged to the wrong rank's ladder.
    const bool counter_mode = options.rng_mode == RngMode::CounterSequence;
    const bool steal_inter =
        counter_mode && !store && p > 1 &&
        (options.steal == StealMode::Inter || options.steal == StealMode::On);
    const bool skew = options.steal_skew && counter_mode && !store;
    // With inter stealing or a skewed partition the stream -> rank map no
    // longer says where samples live, so each rank records the global draw
    // ranges it actually executed; healing then gathers the survivors'
    // inventories and regenerates exactly the ranges nobody holds.
    const bool flexible_placement = steal_inter || skew;
    detail::StreamInventory inventory;

    // This rank's slice of the global window [lo, lo + count): the governed
    // admission batch.  Leap-frog engines are carried across batches —
    // extend_window walks windows in ascending order, so each engine
    // resumes exactly where the previous batch left it.
    auto generate_slice = [&](RRRCollection &scratch, std::uint64_t lo,
                              std::uint64_t count) {
      const std::uint64_t hi = lo + count;
      if (options.rng_mode == RngMode::LeapfrogLcg) {
        for (OwnedStream &os : owned)
          sample_leapfrog_range(graph, options.model, os.engine, os.stream,
                                stride, lo, hi, scratch);
      } else {
        std::vector<std::uint64_t> indices;
        for (const OwnedStream &os : owned)
          for (std::uint64_t i = leapfrog_first_index(lo, os.stream, stride);
               i < hi; i += stride)
            indices.push_back(i);
        generate_counter_indices(graph, options, indices, scratch,
                                 /*governed=*/true);
      }
    };

    auto extend_to = [&](std::uint64_t target) {
      if (target <= global_count) return;
      window_target = target;
      // Rank-local slice of the batch; the sets arg is attached at the end
      // because leap-frog generation doesn't know its count upfront.
      trace::Span batch_span("sampler", "sampler.dist_batch", "target", target);
      if (store) {
        if (options.rng_mode == RngMode::LeapfrogLcg) {
          store->extend_window(global_count, target, generate_slice);
        } else {
          // Counter mode goes through a per-call generator with the stream
          // list captured *by value*: the store journals a copy of every
          // generator for scrub repair, and healing grows `owned` — a
          // by-reference capture would replay old windows with the new
          // stream set and break the bit-identical-regeneration contract.
          std::vector<std::uint64_t> streams;
          streams.reserve(owned.size());
          for (const OwnedStream &os : owned) streams.push_back(os.stream);
          store->extend_window(
              global_count, target,
              [&, streams](RRRCollection &scratch, std::uint64_t lo,
                           std::uint64_t count) {
                const std::uint64_t hi = lo + count;
                std::vector<std::uint64_t> indices;
                for (std::uint64_t s : streams)
                  for (std::uint64_t i = leapfrog_first_index(lo, s, stride);
                       i < hi; i += stride)
                    indices.push_back(i);
                generate_counter_indices(graph, options, indices, scratch,
                                         /*governed=*/true);
              });
        }
      } else if (options.rng_mode == RngMode::LeapfrogLcg) {
        for (OwnedStream &os : owned)
          sample_leapfrog_range(graph, options.model, os.engine, os.stream,
                                stride, global_count, target, local);
      } else if (flexible_placement) {
        // Placement-flexible counter generation: this window's draws become
        // chunks keyed by (stream, global-index range).  Under skew the
        // first live member homes every stream's chunks (the manufactured
        // fig7 pathology); otherwise each rank chunks its own streams.
        std::vector<detail::ChunkRange> mine;
        if (!skew || comm.world_rank() == comm.members().front()) {
          auto chunk_stream = [&](std::uint64_t s) {
            std::vector<detail::ChunkRange> chunks = detail::make_stream_chunks(
                global_count, target, s, stride, options.steal_chunk);
            mine.insert(mine.end(), chunks.begin(), chunks.end());
          };
          if (skew)
            for (std::uint64_t s = 0; s < stride; ++s) chunk_stream(s);
          else
            for (const OwnedStream &os : owned) chunk_stream(os.stream);
        }
        // Executing a chunk is executor-independent: the RNG coordinates
        // come from the chunk's global stream indices, so a stolen chunk
        // emits byte-for-byte the sets its home rank would have.
        auto execute_chunk = [&](const detail::ChunkRange &c, bool stolen) {
          std::vector<std::uint64_t> indices;
          for (std::uint64_t i =
                   leapfrog_first_index(c.begin, c.stream, stride);
               i < c.end; i += stride) {
            indices.push_back(i);
            if (stride > ~std::uint64_t{0} - i) break;
          }
          if (indices.empty()) return;
          // Same category as the enclosing sampler.dist_batch span, so
          // analyze_trace's toplevel-coverage invariants see one batch.
          trace::Span chunk_span("sampler", "sampler.steal_chunk", "stream",
                                 c.stream, "count", indices.size());
          if (stolen) chunk_span.arg("stolen", 1);
          generate_counter_indices(graph, options, indices, local);
          inventory.add(c.stream, c.begin, c.end);
          if (stolen && metrics::enabled()) {
            stolen_chunks_counter().increment();
            stolen_sets_counter().add(indices.size());
          }
        };
        if (!steal_inter) {
          for (const detail::ChunkRange &c : mine) execute_chunk(c, false);
        } else {
          // Publish unconditionally — an empty list included — so every
          // rank consumes the same steal site before its first acquire and
          // early fault-site numbering stays deterministic.
          std::vector<mpsim::Communicator::StealItem> items;
          items.reserve(mine.size());
          for (const detail::ChunkRange &c : mine)
            items.push_back({c.stream, c.begin, c.end});
          comm.steal_publish(items);
          // Publish visibility barrier: a thief whose own list is empty
          // (the skewed case) reaches the drain loop immediately, and
          // without this sync it can scan every queue before the loaded
          // rank has published, conclude the window is drained, and leave
          // all the work where the static partition put it.  After the
          // barrier, queues only shrink, so empty-everywhere really means
          // the window's chunks are all claimed.
          comm.barrier();
          // Drain-and-steal loop.  No further termination protocol needed:
          // a rank finding every queue empty proceeds to the footprint
          // allreduce below, which is the window's real barrier.
          std::uint64_t step = 0;
          for (;;) {
            const steal_schedule::Decision d =
                steal_schedule::decide(comm.world_rank(), step++);
            mpsim::Communicator::StealItem item;
            bool have = false;
            bool stolen = false;
            bool tried = false;
            auto acquire = [&] {
              tried = true;
              return comm.steal_acquire(item, d.victim_offset);
            };
            if (d.allow_steal && d.steal_first) stolen = have = acquire();
            if (!have) have = comm.steal_pop(item);
            if (!have && d.allow_steal && !tried) stolen = have = acquire();
            if (!have) break;
            execute_chunk({item.tag, item.begin, item.end}, stolen);
          }
        }
      } else {
        // Counter mode: per-sample Philox streams keyed by the global index,
        // so R is independent of p; local generation may additionally use
        // OpenMP threads (the paper's hybrid MPI+OpenMP configuration).
        std::vector<std::uint64_t> indices;
        for (const OwnedStream &os : owned)
          for (std::uint64_t i =
                   leapfrog_first_index(global_count, os.stream, stride);
               i < target; i += stride)
            indices.push_back(i);
        generate_counter_indices(graph, options, indices, local);
      }
      global_count = target;
      batch_span.arg("local_sets", local_size());
      trace::counter("rrr_sets", local_size());

      // Aggregate representation footprint across ranks (the paper reports
      // per-node memory pressure; the sum is the cluster-wide cost).
      std::uint64_t footprint[2] = {local_footprint(), local_assoc()};
      comm.allreduce(std::span<std::uint64_t>(footprint, 2),
                     mpsim::ReduceOp::Sum);
      if (comm.rank() == 0) {
        result.rrr_peak_bytes =
            std::max(result.rrr_peak_bytes, static_cast<std::size_t>(footprint[0]));
        result.total_associations = std::max(
            result.total_associations, static_cast<std::size_t>(footprint[1]));
      }
    };

    std::vector<std::uint32_t> local_counts(n);
    std::vector<std::uint32_t> global_counts(n);
    const bool sparse =
        options.selection_exchange == SelectionExchange::Sparse;
    const std::uint32_t topm = std::max<std::uint32_t>(1, options.selection_topm);
    auto select = [&]() -> SelectionResult {
      trace::Span span("select", "select.distributed", "k", options.k,
                       "samples", local_size());
      // Local membership counts over this rank's partition...
      std::fill(local_counts.begin(), local_counts.end(), 0);
      {
        trace::Span count_span("select", "select.count_memberships");
        if (store)
          store->count_into(local_counts);
        else
          count_memberships(local.sets(), local_counts);
      }

      std::vector<std::uint8_t> retired(local_size(), 0);
      std::vector<std::uint8_t> selected(n, 0);

      // Sparse-exchange state, all local to this invocation: a healing
      // restart re-enters select() and rebuilds it from the (intact) local
      // counters, so a failure inside any sparse collective recovers to the
      // same place a dense run would.  `global_counts` doubles as the
      // stage-3 cache of the true global vector; `pending_*` accumulate the
      // retirement decrements not yet folded into it.
      bool cache_valid = false;
      std::vector<std::uint32_t> pending_dec(sparse ? n : 0, 0);
      std::vector<vertex_t> pending_touched;

      // Stage 3: brings the cached global counter vector current — a full
      // allreduce the first time, afterwards an allgatherv of only the
      // counters retirement touched since the last sync (every rank applies
      // every rank's decrements, so the caches stay identical).
      auto dense_resync = [&] {
        if (!cache_valid) {
          std::copy(local_counts.begin(), local_counts.end(),
                    global_counts.begin());
          comm.allreduce(std::span<std::uint32_t>(global_counts),
                         mpsim::ReduceOp::Sum);
          detail::record_exchange_words(n);
          cache_valid = true;
        } else {
          std::vector<CounterPair> deltas;
          deltas.reserve(pending_touched.size());
          for (vertex_t v : pending_touched) deltas.push_back({v, pending_dec[v]});
          detail::record_exchange_words(2 * deltas.size());
          const std::vector<CounterPair> all =
              comm.allgatherv(std::span<const CounterPair>(deltas));
          for (const CounterPair &d : all) {
            RIPPLES_DEBUG_ASSERT(global_counts[d.vertex] >= d.count);
            global_counts[d.vertex] -= d.count;
          }
        }
        for (vertex_t v : pending_touched) pending_dec[v] = 0;
        pending_touched.clear();
      };

      // One sparse round: escalate through the three stages until one
      // certifies the argmax.  Every decision below is a pure function of
      // collectively gathered data, so all ranks agree on each branch.
      auto sparse_round = [&](std::uint32_t round) -> vertex_t {
        // Stage 1: top-m union-merge with the provable-winner bound.
        TopmSummary mine = sparse_topm(local_counts, selected, topm);
        detail::record_exchange_words(2 * mine.top.size() + 1);
        std::vector<std::vector<CounterPair>> tops =
            comm.allgatherv_ranks(std::span<const CounterPair>(mine.top));
        const std::vector<std::uint32_t> bounds =
            comm.allgather(mine.outside_bound);
        std::vector<TopmSummary> summaries(tops.size());
        for (std::size_t r = 0; r < tops.size(); ++r)
          summaries[r] = {std::move(tops[r]), bounds[r]};
        const SparseMergeResult merged = sparse_merge(summaries);
        detail::record_sparse_round(merged.certified);
        if (merged.certified) return merged.winner;

        // Stage 2: targeted re-reduce — exact counts of the candidate
        // union plus each rank's exact maximum outside it (summed, a
        // tighter outside bound than stage 1's).
        detail::record_candidate_fallback();
        trace::instant("select", "select.sparse_candidate_fallback", "round",
                       round);
        std::vector<std::uint32_t> exact(merged.candidates.size() + 1, 0);
        std::uint32_t outside_max = 0;
        for (vertex_t v = 0; v < n; ++v) {
          if (selected[v]) continue;
          if (std::binary_search(merged.candidates.begin(),
                                 merged.candidates.end(), v))
            continue;
          outside_max = std::max(outside_max, local_counts[v]);
        }
        for (std::size_t c = 0; c < merged.candidates.size(); ++c)
          exact[c] = local_counts[merged.candidates[c]];
        exact.back() = outside_max;
        detail::record_exchange_words(exact.size());
        comm.allreduce(std::span<std::uint32_t>(exact), mpsim::ReduceOp::Sum);
        const SparseExactResult proven = sparse_certify_exact(
            merged.candidates,
            std::span<const std::uint32_t>(exact.data(),
                                           merged.candidates.size()),
            exact.back());
        if (proven.certified) return proven.winner;

        // Stage 3: dense fallback against the delta-maintained cache.
        detail::record_dense_fallback();
        trace::instant("select", "select.sparse_dense_fallback", "round",
                       round);
        dense_resync();
        return argmax_counter(global_counts, selected);
      };

      SelectionResult selection;
      std::uint64_t local_covered = 0;
      for (std::uint32_t i = 0; i < options.k; ++i) {
        trace::Span round("select", "select.round", "round", i);
        vertex_t seed;
        if (sparse) {
          seed = sparse_round(i);
        } else {
          // ...aggregated into global counts with the All-Reduce that
          // dominates the communication (O(k n lg p) total).  local_counts
          // is copied, never reduced in place: a failure mid-allreduce may
          // leave the target buffer partially combined, and the healing
          // restart depends on the inputs surviving intact.
          std::copy(local_counts.begin(), local_counts.end(),
                    global_counts.begin());
          comm.allreduce(std::span<std::uint32_t>(global_counts),
                         mpsim::ReduceOp::Sum);
          detail::record_exchange_words(n);
          seed = argmax_counter(global_counts, selected);
        }
        // Identifying the seed and purging the local partition are strictly
        // local operations from here on, identical on every rank.  Sparse
        // mode additionally logs the decrements so stage 3 can delta-sync.
        selected[seed] = 1;
        selection.seeds.push_back(seed);
        if (store)
          local_covered +=
              sparse ? store->retire(seed, local_counts, retired, pending_dec,
                                     pending_touched)
                     : store->retire(seed, local_counts, retired);
        else
          local_covered +=
              sparse ? retire_samples_containing(seed, local.sets(),
                                                 local_counts, retired,
                                                 pending_dec, pending_touched)
                     : retire_samples_containing(seed, local.sets(),
                                                 local_counts, retired);
      }

      std::uint64_t totals[2] = {local_covered, local_size()};
      comm.allreduce(std::span<std::uint64_t>(totals, 2), mpsim::ReduceOp::Sum);
      selection.covered_samples = totals[0];
      selection.total_samples = totals[1];
      return selection;
    };

    // Adopts the streams this shrink orphaned: every survivor replays the
    // identical assignment (lost streams in ascending order, round-robin
    // over the dense survivor list), and the new holder regenerates the
    // lost samples from the stream's coordinates — same engine
    // construction, same index walk, hence bit-identical sets.
    auto heal = [&](const mpsim::ShrinkResult &shrink) {
      trace::Span span("imm", "imm.heal", "dead", shrink.newly_dead.size());
      std::vector<std::uint64_t> lost;
      for (std::uint64_t s = 0; s < stride; ++s) {
        int holder = stream_owner[static_cast<std::size_t>(s)];
        if (std::find(shrink.newly_dead.begin(), shrink.newly_dead.end(),
                      holder) != shrink.newly_dead.end())
          lost.push_back(s);
      }
      std::uint64_t regenerated = 0;
      if (flexible_placement) {
        // Inventory-based healing: with stealing or skew the dead ranks may
        // have executed anyone's chunks (and survivors theirs), so the
        // stream map cannot say what died.  Reassign ownership first (the
        // same deterministic round-robin, keeping future windows balanced),
        // then gather every survivor's executed-range inventory and
        // regenerate exactly the gaps — each on the stream's new owner.
        for (std::size_t j = 0; j < lost.size(); ++j) {
          const std::uint64_t s = lost[j];
          const int new_holder = shrink.members[j % shrink.members.size()];
          stream_owner[static_cast<std::size_t>(s)] = new_holder;
          if (new_holder == comm.world_rank())
            owned.push_back({s, Lcg64::leapfrog_stream(options.seed, s,
                                                       stride)});
        }
        // Heal to the *in-flight* window target, not just the last completed
        // one: a corruption escalation can abort the drain loop mid-window,
        // leaving executed-but-unacknowledged chunks in the survivors'
        // inventories and unexecuted ones in dead (or soon-cleared) queues.
        // Regenerating every gap up to the interrupted target and advancing
        // global_count turns the martingale replay's extend into a no-op —
        // nothing is sampled twice and nothing is lost.
        const std::uint64_t heal_target = std::max(global_count, window_target);
        const std::vector<std::uint64_t> flat = inventory.serialize();
        const std::vector<std::uint64_t> gathered =
            comm.allgatherv(std::span<const std::uint64_t>(flat));
        for (const detail::ChunkRange &m :
             detail::missing_ranges(gathered, stride, heal_target)) {
          if (stream_owner[static_cast<std::size_t>(m.stream)] !=
              comm.world_rank())
            continue;
          std::vector<std::uint64_t> indices;
          for (std::uint64_t i =
                   leapfrog_first_index(m.begin, m.stream, stride);
               i < m.end; i += stride)
            indices.push_back(i);
          regenerated += generate_counter_indices(graph, options, indices,
                                                  local);
          inventory.add(m.stream, m.begin, m.end);
        }
        global_count = heal_target;
        if (metrics::enabled()) regen_counter().add(regenerated);
        span.arg("regenerated", regenerated);
        trace::counter("rrr_sets", local_size());
        return;
      }
      for (std::size_t j = 0; j < lost.size(); ++j) {
        const std::uint64_t s = lost[j];
        const int new_holder = shrink.members[j % shrink.members.size()];
        stream_owner[static_cast<std::size_t>(s)] = new_holder;
        if (new_holder != comm.world_rank()) continue;
        Lcg64 engine = Lcg64::leapfrog_stream(options.seed, s, stride);
        if (store) {
          // Governed healing: the adopted stream's regeneration is admitted
          // through the same budget-charged ladder as fresh sampling —
          // composition means an adopting rank can itself be refused, and
          // the refusal is the same diagnosed failure as anywhere else.
          // Counter mode captures the stream id by value: the journalled
          // generator copy outlives this loop iteration (scrub replay).
          if (options.rng_mode == RngMode::LeapfrogLcg) {
            store->extend_window(
                0, global_count,
                [&](RRRCollection &scratch, std::uint64_t lo,
                    std::uint64_t count) {
                  regenerated += sample_leapfrog_range(graph, options.model,
                                                       engine, s, stride, lo,
                                                       lo + count, scratch);
                });
          } else {
            // Pure function of the window — no capture of heal-scope
            // locals beyond the value-copied stream id, so the journalled
            // copy stays valid for scrub replay after heal() returns.
            store->extend_window(
                0, global_count,
                [&graph, &options, s, stride](RRRCollection &scratch,
                                              std::uint64_t lo,
                                              std::uint64_t count) {
                  const std::uint64_t hi = lo + count;
                  std::vector<std::uint64_t> indices;
                  for (std::uint64_t i = leapfrog_first_index(lo, s, stride);
                       i < hi; i += stride)
                    indices.push_back(i);
                  generate_counter_indices(graph, options, indices, scratch,
                                           /*governed=*/true);
                });
            if (s < global_count)
              regenerated += (global_count - s + stride - 1) / stride;
          }
        } else if (options.rng_mode == RngMode::LeapfrogLcg) {
          regenerated += sample_leapfrog_range(graph, options.model, engine, s,
                                               stride, 0, global_count, local);
        } else {
          std::vector<std::uint64_t> indices;
          for (std::uint64_t i = s; i < global_count; i += stride)
            indices.push_back(i);
          regenerated += generate_counter_indices(graph, options, indices,
                                                  local);
        }
        owned.push_back({s, engine});
      }
      if (metrics::enabled()) regen_counter().add(regenerated);
      span.arg("regenerated", regenerated);
      trace::counter("rrr_sets", local_size());
    };

    // Round-boundary snapshot: progress is replicated, so the current dense
    // rank 0 writes for everyone (a healed run keeps exactly one writer).
    // Acceptance boundaries force past the --checkpoint-every thinning —
    // they gate the long final phase, the costliest state to lose.
    auto round_hook = [&](const detail::MartingaleProgress &progress) {
      if (!ckpt.enabled() || comm.rank() != 0)
        return;
      ckpt.manager->observe(
          detail::snapshot_from_progress(
              ckpt.fingerprint, progress,
              detail::leapfrog_stream_counts(progress.num_samples, stride)),
          progress.accepted);
    };

    PhaseTimers timers;
    detail::MartingaleOutcome outcome;
    // A healing restart replays the loop, so a rank that survives a failure
    // contributes one ledger row per round per attempt — truthful accounting
    // of the work actually done, not of the logical round structure.
    detail::RoundAccounting acct{&ledger, comm.world_rank(), [&] {
      return std::pair<std::uint64_t, std::uint64_t>(local_size(),
                                                     local_footprint());
    }};
    for (;;) {
      try {
        outcome = detail::run_imm_martingale(n, options.k, options.epsilon,
                                             options.l, extend_to, select,
                                             timers, ckpt.resume_progress(),
                                             round_hook, acct);
        break;
      } catch (const mpsim::RankFailed &failed) {
        // Survivable failure: agree on the dead set, adopt their streams,
        // and re-run the martingale.  The replay is deterministic — the
        // no-op extends and recomputed selections retrace the exact
        // decision sequence — so the healed run's seed set matches a
        // failure-free run bit for bit.
        trace::instant("imm", "imm.rank_failed", "dead",
                       failed.dead_ranks().size());
        heal(comm.shrink());
      }
    }
    // Dense rank 0 — world rank 0 unless it died — records the outcome.
    if (comm.rank() == 0) {
      result.seeds = outcome.selection.seeds;
      result.theta = outcome.theta;
      result.num_samples = outcome.num_samples;
      result.lower_bound = outcome.lower_bound;
      result.coverage_fraction = outcome.selection.coverage_fraction();
      result.degraded = outcome.degraded;
      result.epsilon_achieved = outcome.epsilon_achieved;
      result.timers = timers;
      report_outcome = std::move(outcome);
    }

    // Every rank holds whole samples of its partition, so merging the
    // per-rank histograms yields the exact global size distribution — the
    // adopted streams stand in for the dead ranks' contributions.
    metrics::HistogramData local_sizes;
    if (store)
      store->record_sizes(local_sizes);
    else
      for (const RRRSet &sample : local.sets())
        local_sizes.record(sample.size());
    {
      std::lock_guard<std::mutex> lock(report_mutex);
      result.report.rrr_sizes.merge(local_sizes);
    }
  });

  result.timers.add(Phase::Other,
                    total.elapsed_seconds() - result.timers.total());
  result.report.collectives = mpsim::comm_stats().since(comm_before).nonzero();
  result.report.rounds = ledger.entries();
  detail::finalize_run_report(result, "imm_distributed", graph, options,
                              report_outcome);
  return result;
}

} // namespace ripples
