/// \file imm_distributed.cpp
/// \brief IMM_dist: the hybrid distributed implementation (Section 3.2).
///
/// Layout, as in the paper: every rank holds the whole input graph and owns
/// a partition R_i of the samples; sample generation is evenly split (rank
/// r produces the global sample indices congruent to r mod p); seed
/// selection keeps an n-entry counter array per rank, aggregated with an
/// All-Reduce once per greedy round, after which choosing the seed and
/// purging the local partition are rank-local operations.  The dominant
/// communication is therefore the k All-Reduce operations per selection.
#include "imm/imm.hpp"

#include <algorithm>
#include <mutex>
#include <omp.h>
#include <vector>

#include "imm/imm_core.hpp"
#include "imm/sampler.hpp"
#include "mpsim/communicator.hpp"
#include "rng/lcg.hpp"
#include "support/assert.hpp"
#include "support/trace.hpp"

namespace ripples {

namespace {

/// First global index >= \p from assigned to \p rank under round-robin
/// ownership (index i belongs to rank i mod p).
std::uint64_t first_owned_index(std::uint64_t from, int rank, int p) {
  auto r = static_cast<std::uint64_t>(rank);
  auto stride = static_cast<std::uint64_t>(p);
  std::uint64_t remainder = from % stride;
  return from + (r >= remainder ? r - remainder : stride - remainder + r);
}

} // namespace

ImmResult imm_distributed(const CsrGraph &graph, const ImmOptions &options) {
  RIPPLES_ASSERT(options.num_ranks >= 1);
  RIPPLES_ASSERT(options.num_threads >= 1);
  RIPPLES_ASSERT_MSG(options.rng_mode == RngMode::CounterSequence ||
                         options.num_threads == 1,
                     "leap-frog LCG streams are per-rank sequential; use one "
                     "thread per rank or CounterSequence mode");

  ImmResult result;
  StopWatch total;
  trace::Span driver_span("imm", "imm_distributed", "k", options.k, "ranks",
                          static_cast<std::uint64_t>(options.num_ranks));
  // Bracket the execution so the report carries only this run's volume.
  const mpsim::CommStatsSnapshot comm_before = mpsim::comm_stats();
  detail::MartingaleOutcome report_outcome;
  std::mutex report_mutex; // guards the cross-rank histogram merge

  mpsim::Context::run(options.num_ranks, [&](mpsim::Communicator &comm) {
    const int p = comm.size();
    const int rank = comm.rank();
    const vertex_t n = graph.num_vertices();

    RRRCollection local; // R_rank: this rank's partition of the samples
    std::uint64_t global_count = 0;

    // The paper's parallel RNG discipline: one global LCG sequence split
    // leap-frog so rank r consumes subsequence r, r+p, r+2p, ...
    Lcg64 leapfrog_engine = Lcg64(options.seed).leapfrog(
        static_cast<std::uint64_t>(rank), static_cast<std::uint64_t>(p));
    RRRGenerator generator(graph);

    auto extend_to = [&](std::uint64_t target) {
      if (target <= global_count) return;
      // Rank-local slice of the batch; the sets arg is attached at the end
      // because leap-frog generation doesn't know its count upfront.
      trace::Span batch_span("sampler", "sampler.dist_batch", "target", target);
      if (options.rng_mode == RngMode::LeapfrogLcg) {
        for (std::uint64_t i = first_owned_index(global_count, rank, p);
             i < target; i += static_cast<std::uint64_t>(p)) {
          RRRSet set;
          generator.generate_random_root(options.model, leapfrog_engine, set);
          local.add(std::move(set));
        }
      } else {
        // Counter mode: per-sample Philox streams keyed by the global index,
        // so R is independent of p; local generation may additionally use
        // OpenMP threads (the paper's hybrid MPI+OpenMP configuration).
        std::vector<std::uint64_t> indices;
        for (std::uint64_t i = first_owned_index(global_count, rank, p);
             i < target; i += static_cast<std::uint64_t>(p))
          indices.push_back(i);
        std::uint64_t first_slot = local.grow(indices.size());
        auto &sets = local.mutable_sets();
#pragma omp parallel num_threads(static_cast<int>(options.num_threads))
        {
          RRRGenerator thread_generator(graph);
#pragma omp for schedule(dynamic, 16)
          for (std::int64_t j = 0; j < static_cast<std::int64_t>(indices.size());
               ++j) {
            Philox4x32 rng =
                sample_stream(options.seed, indices[static_cast<std::size_t>(j)]);
            thread_generator.generate_random_root(
                options.model, rng, sets[first_slot + static_cast<std::uint64_t>(j)]);
          }
        }
      }
      global_count = target;
      batch_span.arg("local_sets", local.size());
      trace::counter("rrr_sets", local.size());

      // Aggregate representation footprint across ranks (the paper reports
      // per-node memory pressure; the sum is the cluster-wide cost).
      std::uint64_t footprint[2] = {local.footprint_bytes(),
                                    local.total_associations()};
      comm.allreduce(std::span<std::uint64_t>(footprint, 2),
                     mpsim::ReduceOp::Sum);
      if (rank == 0) {
        result.rrr_peak_bytes =
            std::max(result.rrr_peak_bytes, static_cast<std::size_t>(footprint[0]));
        result.total_associations = std::max(
            result.total_associations, static_cast<std::size_t>(footprint[1]));
      }
    };

    std::vector<std::uint32_t> local_counts(n);
    std::vector<std::uint32_t> global_counts(n);
    auto select = [&]() -> SelectionResult {
      trace::Span span("select", "select.distributed", "k", options.k,
                       "samples", local.size());
      // Local membership counts over R_rank...
      std::fill(local_counts.begin(), local_counts.end(), 0);
      {
        trace::Span count_span("select", "select.count_memberships");
        count_memberships(local.sets(), local_counts);
      }

      std::vector<std::uint8_t> retired(local.size(), 0);
      std::vector<std::uint8_t> selected(n, 0);

      SelectionResult selection;
      std::uint64_t local_covered = 0;
      for (std::uint32_t i = 0; i < options.k; ++i) {
        trace::Span round("select", "select.round", "round", i);
        // ...aggregated into global counts with the All-Reduce that
        // dominates the communication (O(k n lg p) total).
        std::copy(local_counts.begin(), local_counts.end(),
                  global_counts.begin());
        comm.allreduce(std::span<std::uint32_t>(global_counts),
                       mpsim::ReduceOp::Sum);
        // Identifying the seed and purging the local partition are strictly
        // local operations from here on, identical on every rank.
        vertex_t seed = argmax_counter(global_counts, selected);
        selected[seed] = 1;
        selection.seeds.push_back(seed);
        local_covered += retire_samples_containing(seed, local.sets(),
                                                   local_counts, retired);
      }

      std::uint64_t totals[2] = {local_covered, local.size()};
      comm.allreduce(std::span<std::uint64_t>(totals, 2), mpsim::ReduceOp::Sum);
      selection.covered_samples = totals[0];
      selection.total_samples = totals[1];
      return selection;
    };

    PhaseTimers timers;
    auto outcome =
        detail::run_imm_martingale(n, options.k, options.epsilon, options.l,
                                   extend_to, select, timers);
    if (rank == 0) {
      result.seeds = outcome.selection.seeds;
      result.theta = outcome.theta;
      result.num_samples = outcome.num_samples;
      result.lower_bound = outcome.lower_bound;
      result.coverage_fraction = outcome.selection.coverage_fraction();
      result.timers = timers;
      report_outcome = std::move(outcome);
    }

    // Every rank holds whole samples of its partition R_rank, so merging
    // the per-rank histograms yields the exact global size distribution.
    metrics::HistogramData local_sizes;
    for (const RRRSet &sample : local.sets()) local_sizes.record(sample.size());
    {
      std::lock_guard<std::mutex> lock(report_mutex);
      result.report.rrr_sizes.merge(local_sizes);
    }
  });

  result.timers.add(Phase::Other,
                    total.elapsed_seconds() - result.timers.total());
  result.report.collectives = mpsim::comm_stats().since(comm_before).nonzero();
  detail::finalize_run_report(result, "imm_distributed", graph, options,
                              report_outcome);
  return result;
}

} // namespace ripples
