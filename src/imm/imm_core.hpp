/// \file imm_core.hpp
/// \brief The martingale skeleton shared by all four drivers (Algs. 1-2).
///
/// Drivers differ only in how they extend R and how they select seeds; the
/// doubling estimation loop, the stopping rule, and the phase accounting
/// are identical.  This header factors that skeleton as a template over the
/// two operations.  Phase accounting follows the paper's convention
/// (Section 4.1): Sample calls made from inside the estimation loop count
/// toward "EstimateTheta"; only the top-level Sample call after theta is
/// fixed counts toward "Sample".
#ifndef RIPPLES_IMM_IMM_CORE_HPP
#define RIPPLES_IMM_IMM_CORE_HPP

#include <algorithm>

#include "imm/select.hpp"
#include "imm/theta.hpp"
#include "support/log.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace ripples::detail {

struct MartingaleOutcome {
  SelectionResult selection;
  std::uint64_t theta = 0;
  std::uint64_t num_samples = 0;
  double lower_bound = 1.0;
  /// Doubling iterations the estimation loop executed (x at acceptance, or
  /// the schedule maximum when estimation was exhausted).
  std::uint32_t estimation_iterations = 0;
  /// Sample-count target of every extend call in execution order: the
  /// doubling schedule plus the final top-up when theta overshoots |R|.
  /// Feeds the run report's theta section.
  std::vector<std::uint64_t> extend_targets;
};

/// \param extend_to  void(std::uint64_t target): grow R to `target` samples.
/// \param select     SelectionResult(): run seed selection over current R.
template <typename ExtendFn, typename SelectFn>
MartingaleOutcome run_imm_martingale(std::uint64_t num_vertices,
                                     std::uint32_t k, double epsilon, double l,
                                     ExtendFn &&extend_to, SelectFn &&select,
                                     PhaseTimers &timers) {
  ThetaSchedule schedule(num_vertices, k, epsilon, l);

  MartingaleOutcome outcome;
  bool accepted = false;
  double last_coverage = 0.0;
  {
    ScopedPhase phase(timers, Phase::EstimateTheta);
    trace::Span estimate_span("imm", "imm.estimate_theta");
    for (std::uint32_t x = 1; x <= schedule.max_iterations(); ++x) {
      std::uint64_t target = schedule.target_samples(x);
      trace::Span round_span("imm", "imm.estimation_round", "x", x, "target",
                             target);
      outcome.num_samples = std::max(outcome.num_samples, target);
      outcome.estimation_iterations = x;
      outcome.extend_targets.push_back(target);
      extend_to(target);
      SelectionResult trial = select();
      last_coverage = trial.coverage_fraction();
      if (schedule.accept(x, last_coverage, &outcome.lower_bound)) {
        accepted = true;
        trace::instant("imm", "imm.estimation_accepted", "x", x);
        RIPPLES_LOG_DEBUG("estimation accepted at x=%u: |R|=%llu LB=%.1f", x,
                          static_cast<unsigned long long>(target),
                          outcome.lower_bound);
        break;
      }
    }
  }
  if (!accepted) {
    // The doubling schedule is exhausted (possible only on tiny or
    // pathologically low-influence inputs): fall back to the estimator from
    // the last iteration, which is still a valid (if loose) lower bound.
    outcome.lower_bound =
        std::max(1.0, static_cast<double>(num_vertices) * last_coverage /
                          (1.0 + schedule.epsilon_prime()));
    RIPPLES_LOG_DEBUG("estimation exhausted; fallback LB=%.1f",
                      outcome.lower_bound);
  }

  outcome.theta = schedule.final_theta(outcome.lower_bound);
  if (outcome.theta > outcome.num_samples) {
    ScopedPhase phase(timers, Phase::Sample);
    trace::Span span("imm", "imm.sample", "theta", outcome.theta);
    outcome.extend_targets.push_back(outcome.theta);
    extend_to(outcome.theta);
    outcome.num_samples = outcome.theta;
  }
  {
    ScopedPhase phase(timers, Phase::SelectSeeds);
    trace::Span span("imm", "imm.select_seeds", "k", k, "samples",
                     outcome.num_samples);
    outcome.selection = select();
  }
  return outcome;
}

} // namespace ripples::detail

#endif // RIPPLES_IMM_IMM_CORE_HPP
