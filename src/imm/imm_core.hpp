/// \file imm_core.hpp
/// \brief The martingale skeleton shared by all four drivers (Algs. 1-2).
///
/// Drivers differ only in how they extend R and how they select seeds; the
/// doubling estimation loop, the stopping rule, and the phase accounting
/// are identical.  This header factors that skeleton as a template over the
/// two operations.  Phase accounting follows the paper's convention
/// (Section 4.1): Sample calls made from inside the estimation loop count
/// toward "EstimateTheta"; only the top-level Sample call after theta is
/// fixed counts toward "Sample".
///
/// The skeleton is also the checkpoint/restart anchor (DESIGN.md §9): all
/// martingale state lives in a `MartingaleProgress` value that a round hook
/// observes at every boundary and that a resumed run feeds back in.  Because
/// every extend is a deterministic replay from RNG coordinates, re-entering
/// the loop at `progress.next_round` after regenerating `progress.num_samples`
/// samples reproduces the uninterrupted run bit-for-bit.
#ifndef RIPPLES_IMM_IMM_CORE_HPP
#define RIPPLES_IMM_IMM_CORE_HPP

#include <algorithm>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "imm/budget.hpp"
#include "imm/select.hpp"
#include "imm/theta.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace ripples::detail {

/// Thread-safe collector for per-round, per-rank phase accounting
/// (DESIGN.md §11).  Every rank thread records its own RoundEntry at each
/// round boundary; because mpsim ranks share one address space, the
/// "reduction over ranks" is a mutex append (the same pattern as the
/// drivers' histogram merge) rather than a collective — which keeps the
/// fault-injection site numbering and comm stats byte-identical to an
/// unledgered run.  RunReport groups the entries by round at serialization.
class RoundLedger {
public:
  void record(const metrics::RoundEntry &entry) {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.push_back(entry);
  }

  [[nodiscard]] std::vector<metrics::RoundEntry> entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
  }

private:
  mutable std::mutex mutex_;
  std::vector<metrics::RoundEntry> entries_;
};

/// Hooks one rank's pass through the martingale skeleton up to a ledger.
/// `storage` reports the rank-local {RRR sets, footprint bytes} after each
/// round.  With a null ledger (or metrics disabled) the skeleton records
/// nothing — the zero-events-when-disabled contract.
struct RoundAccounting {
  RoundLedger *ledger = nullptr;
  std::int32_t rank = 0;
  std::function<std::pair<std::uint64_t, std::uint64_t>()> storage;
};

struct MartingaleOutcome {
  SelectionResult selection;
  std::uint64_t theta = 0;
  std::uint64_t num_samples = 0;
  double lower_bound = 1.0;
  /// Doubling iterations the estimation loop executed (x at acceptance, or
  /// the schedule maximum when estimation was exhausted).
  std::uint32_t estimation_iterations = 0;
  /// Sample-count target of every extend call in execution order: the
  /// doubling schedule plus the final top-up when theta overshoots |R|.
  /// Feeds the run report's theta section.
  std::vector<std::uint64_t> extend_targets;
  /// True when the memory budget stopped sample generation early
  /// (BudgetEarlyStop): the selection covers only `num_samples` samples and
  /// certifies `epsilon_achieved` instead of the requested epsilon.
  bool degraded = false;
  /// Accuracy certified by the samples actually generated: the requested
  /// epsilon normally, certified_epsilon() on a degraded run.
  double epsilon_achieved = 0.0;
};

/// Complete martingale-loop state at a round boundary.  This is exactly what
/// a checkpoint stores (plus the driver's RNG coordinates): restoring it and
/// replaying `extend_to(num_samples)` puts a fresh process in the same state
/// the killed one reached.  The doubles carry bit-exact values — the final
/// theta is a function of `lower_bound`, so any rounding on the resume path
/// would change the seed set.
struct MartingaleProgress {
  /// Next estimation round to execute (1-based).  Rounds before it are done;
  /// a value past the schedule maximum means estimation was exhausted.
  std::uint32_t next_round = 1;
  /// True once the stopping rule fired; resume then skips the loop entirely.
  bool accepted = false;
  double lower_bound = 1.0;
  /// Coverage from the most recent round — the input to the exhausted-
  /// schedule fallback lower bound, so it must survive a kill.
  double last_coverage = 0.0;
  std::uint32_t estimation_iterations = 0;
  /// |R| reached at this boundary (the replay target on resume).
  std::uint64_t num_samples = 0;
  std::vector<std::uint64_t> extend_targets;
};

/// \param extend_to   void(std::uint64_t target): grow R to `target` samples.
/// \param select      SelectionResult(): run seed selection over current R.
/// \param resume      martingale state to re-enter from, or nullptr for a
///                    fresh run.  The skeleton replays
///                    `extend_to(resume->num_samples)` itself.
/// \param round_hook  void(const MartingaleProgress &): called at every
///                    round boundary (and after the final theta extend) with
///                    the state a resume would need; drivers snapshot here.
/// \param acct        optional per-rank round accounting (ledger + storage
///                    probe); default-constructed means none.
template <typename ExtendFn, typename SelectFn, typename RoundHook>
MartingaleOutcome
run_imm_martingale(std::uint64_t num_vertices, std::uint32_t k, double epsilon,
                   double l, ExtendFn &&extend_to, SelectFn &&select,
                   PhaseTimers &timers, const MartingaleProgress *resume,
                   RoundHook &&round_hook, const RoundAccounting &acct = {}) {
  ThetaSchedule schedule(num_vertices, k, epsilon, l);

  MartingaleProgress progress;
  if (resume != nullptr)
    progress = *resume;

  MartingaleOutcome outcome;
  outcome.num_samples = progress.num_samples;
  outcome.lower_bound = progress.lower_bound;
  outcome.estimation_iterations = progress.estimation_iterations;
  outcome.extend_targets = progress.extend_targets;
  bool accepted = progress.accepted;
  double last_coverage = progress.last_coverage;
  // Set when an extend raises BudgetEarlyStop (shared-memory governed runs,
  // ladder rung 3): generation is over, but selection over what R holds is
  // still a valid IMM answer at a weaker epsilon — finish, don't abort.
  bool early_stopped = false;

  const bool ledgered = acct.ledger != nullptr && metrics::enabled();
  // Sampler→selection flows: each extend batch starts one flow ("s" when
  // the batch is complete), steps through every estimation selection that
  // consumes it ("t"), and terminates at the final selection ("f") — so the
  // timeline shows exactly which selection rounds read which batches.
  std::vector<std::uint64_t> batch_flows;
  auto batch_ready = [&] {
    if (!trace::enabled()) return;
    std::uint64_t id = trace::new_flow_id();
    trace::flow_begin("flow", "flow.rrr_batch", id);
    batch_flows.push_back(id);
  };
  auto record_round = [&](std::uint32_t round, double sample_seconds,
                          double select_seconds, double wait_seconds) {
    if (!ledgered) return;
    metrics::RoundEntry entry;
    entry.round = round;
    entry.rank = acct.rank;
    entry.sample_seconds = sample_seconds;
    entry.select_seconds = select_seconds;
    entry.collective_wait_seconds = wait_seconds;
    if (acct.storage) {
      auto [sets, bytes] = acct.storage();
      entry.rrr_sets = sets;
      entry.rrr_bytes = bytes;
    }
    acct.ledger->record(entry);
  };

  if (resume != nullptr && progress.num_samples > 0) {
    // Deterministic replay: regenerate the checkpointed |R| from RNG
    // coordinates before re-entering the loop.  Attributed to the phase the
    // killed run was in so resumed reports stay interpretable.
    ScopedPhase phase(timers, accepted ? Phase::Sample : Phase::EstimateTheta);
    trace::Span span("imm", "imm.resume_replay", "samples",
                     progress.num_samples, "next_round", progress.next_round);
    double wait_before = metrics::thread_collective_wait_seconds();
    StopWatch watch;
    try {
      extend_to(progress.num_samples);
    } catch (const BudgetEarlyStop &stop) {
      early_stopped = true;
      outcome.num_samples = stop.achieved;
    }
    batch_ready();
    // Ledgered as round 0: replay work is real but belongs to no round.
    record_round(0, watch.elapsed_seconds(), 0.0,
                 metrics::thread_collective_wait_seconds() - wait_before);
  }

  if (!accepted && !early_stopped) {
    ScopedPhase phase(timers, Phase::EstimateTheta);
    trace::Span estimate_span("imm", "imm.estimate_theta");
    for (std::uint32_t x = progress.next_round; x <= schedule.max_iterations();
         ++x) {
      std::uint64_t target = schedule.target_samples(x);
      trace::Span round_span("imm", "imm.estimation_round", "x", x, "target",
                             target);
      outcome.num_samples = std::max(outcome.num_samples, target);
      outcome.estimation_iterations = x;
      outcome.extend_targets.push_back(target);
      double wait_before = metrics::thread_collective_wait_seconds();
      StopWatch round_watch;
      try {
        extend_to(target);
      } catch (const BudgetEarlyStop &stop) {
        early_stopped = true;
        outcome.num_samples = stop.achieved;
      }
      double sample_seconds = round_watch.elapsed_seconds();
      batch_ready();
      // On an early stop the selection still runs: its coverage feeds the
      // fallback lower bound the certified epsilon' is derived from.
      SelectionResult trial = select();
      double select_seconds = round_watch.elapsed_seconds() - sample_seconds;
      if (trace::enabled())
        for (std::uint64_t id : batch_flows)
          trace::flow_step("flow", "flow.rrr_batch", id);
      record_round(x, sample_seconds, select_seconds,
                   metrics::thread_collective_wait_seconds() - wait_before);
      last_coverage = trial.coverage_fraction();
      // Acceptance needs the full theta_x samples behind it; a truncated
      // round never accepts.
      if (!early_stopped &&
          schedule.accept(x, last_coverage, &outcome.lower_bound)) {
        accepted = true;
        trace::instant("imm", "imm.estimation_accepted", "x", x);
        RIPPLES_LOG_DEBUG("estimation accepted at x=%u: |R|=%llu LB=%.1f", x,
                          static_cast<unsigned long long>(target),
                          outcome.lower_bound);
      }
      progress.next_round = x + 1;
      progress.accepted = accepted;
      progress.lower_bound = outcome.lower_bound;
      progress.last_coverage = last_coverage;
      progress.estimation_iterations = outcome.estimation_iterations;
      progress.num_samples = outcome.num_samples;
      progress.extend_targets = outcome.extend_targets;
      round_hook(static_cast<const MartingaleProgress &>(progress));
      if (accepted || early_stopped)
        break;
    }
  }
  if (!accepted) {
    // The doubling schedule is exhausted (possible only on tiny or
    // pathologically low-influence inputs): fall back to the estimator from
    // the last iteration, which is still a valid (if loose) lower bound.
    outcome.lower_bound =
        std::max(1.0, static_cast<double>(num_vertices) * last_coverage /
                          (1.0 + schedule.epsilon_prime()));
    RIPPLES_LOG_DEBUG("estimation exhausted; fallback LB=%.1f",
                      outcome.lower_bound);
  }

  outcome.theta = schedule.final_theta(outcome.lower_bound);
  double final_wait_before = metrics::thread_collective_wait_seconds();
  double final_sample_seconds = 0.0;
  if (outcome.theta > outcome.num_samples && !early_stopped) {
    ScopedPhase phase(timers, Phase::Sample);
    trace::Span span("imm", "imm.sample", "theta", outcome.theta);
    outcome.extend_targets.push_back(outcome.theta);
    StopWatch watch;
    try {
      extend_to(outcome.theta);
      outcome.num_samples = outcome.theta;
    } catch (const BudgetEarlyStop &stop) {
      early_stopped = true;
      outcome.num_samples = stop.achieved;
    }
    final_sample_seconds = watch.elapsed_seconds();
    batch_ready();
    progress.accepted = accepted;
    progress.lower_bound = outcome.lower_bound;
    progress.last_coverage = last_coverage;
    progress.num_samples = outcome.num_samples;
    progress.extend_targets = outcome.extend_targets;
    // Boundary after the (often longest) final extend: a kill during the
    // final selection resumes here instead of replaying the theta top-up
    // from the acceptance snapshot.
    round_hook(static_cast<const MartingaleProgress &>(progress));
  }
  {
    ScopedPhase phase(timers, Phase::SelectSeeds);
    trace::Span span("imm", "imm.select_seeds", "k", k, "samples",
                     outcome.num_samples);
    StopWatch select_watch;
    outcome.selection = select();
    double final_select_seconds = select_watch.elapsed_seconds();
    // The final selection consumes every outstanding batch: terminate the
    // flows while the select span is still open so the arrows land on it.
    if (trace::enabled()) {
      for (std::uint64_t id : batch_flows)
        trace::flow_end("flow", "flow.rrr_batch", id);
      batch_flows.clear();
    }
    record_round(outcome.estimation_iterations + 1, final_sample_seconds,
                 final_select_seconds,
                 metrics::thread_collective_wait_seconds() - final_wait_before);
  }
  outcome.degraded = early_stopped;
  outcome.epsilon_achieved =
      early_stopped ? certified_epsilon(num_vertices, k, epsilon, l,
                                        outcome.lower_bound,
                                        outcome.num_samples)
                    : epsilon;
  if (early_stopped) {
    trace::instant("imm", "imm.degraded", "samples", outcome.num_samples);
    RIPPLES_LOG_INFO(
        "memory budget stopped sampling at |R|=%llu; certified epsilon=%.4f "
        "(requested %.4f)",
        static_cast<unsigned long long>(outcome.num_samples),
        outcome.epsilon_achieved, epsilon);
  }
  return outcome;
}

/// Checkpoint-free form used by the shared-memory drivers.
template <typename ExtendFn, typename SelectFn>
MartingaleOutcome run_imm_martingale(std::uint64_t num_vertices,
                                     std::uint32_t k, double epsilon, double l,
                                     ExtendFn &&extend_to, SelectFn &&select,
                                     PhaseTimers &timers,
                                     const RoundAccounting &acct = {}) {
  return run_imm_martingale(num_vertices, k, epsilon, l,
                            std::forward<ExtendFn>(extend_to),
                            std::forward<SelectFn>(select), timers, nullptr,
                            [](const MartingaleProgress &) {}, acct);
}

} // namespace ripples::detail

#endif // RIPPLES_IMM_IMM_CORE_HPP
