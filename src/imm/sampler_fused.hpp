/// \file sampler_fused.hpp
/// \brief Fused sampling engine: up to 64 RRR draws per traversal batch
/// (DESIGN.md §10, `--sampler fused`).
///
/// The engine shares the indexing discipline of sampler.hpp — RRR set i is
/// drawn from the Philox stream (seed, i) with the identical draw order —
/// so every entry point here produces a collection byte-identical to its
/// scalar counterpart.  What changes is the execution shape: 64 samples
/// ("lanes") advance level-synchronously through one traversal pass, the
/// visited state is one 64-bit lane mask per vertex (support/bitvector.hpp's
/// LaneMaskVector, after Göktürk & Kaya arXiv 2008.03095), each lane's
/// Philox counter blocks are generated out of order in bulk
/// (rng/philox_buffered.hpp), the per-edge Bernoulli test is a precomputed
/// integer compare, and the sorted output lists are *emitted* from the lane
/// masks in vertex order instead of sorted per set.
#ifndef RIPPLES_IMM_SAMPLER_FUSED_HPP
#define RIPPLES_IMM_SAMPLER_FUSED_HPP

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "imm/rrr_collection.hpp"
#include "rng/philox_buffered.hpp"
#include "support/bitvector.hpp"

namespace ripples {

/// Reusable fused GenerateRR kernel: one instance per thread, holding the
/// lane-mask visited array, per-lane frontier scratch, and 64 buffered
/// Philox engines so repeated batches allocate nothing.
class FusedSampler {
public:
  static constexpr unsigned kLanes = 64;

  explicit FusedSampler(const CsrGraph &graph);

  /// Generates the RRR sets for global sample indices \p sample_indices
  /// (at most kLanes of them), writing lane l into outs[l].  Each lane
  /// draws from sample_stream(seed, sample_indices[l]) with the scalar
  /// engines' exact draw order, so the output is byte-identical to calling
  /// RRRGenerator::generate_random_root per index.
  void generate(DiffusionModel model, std::uint64_t seed,
                std::span<const std::uint64_t> sample_indices, RRRSet *outs);

  /// Accumulated instrumentation over this instance's lifetime: distinct
  /// visited-mask words touched, and frontier passes executed.  Flushed to
  /// the sampler.fused.{words,passes} registry counters by the entry
  /// points below.
  [[nodiscard]] std::uint64_t words_touched() const { return words_; }
  [[nodiscard]] std::uint64_t passes() const { return passes_; }

  /// Heap bytes one instance's lane structures hold for \p graph (the
  /// visited lane masks, touched list, and packed edge/threshold streams —
  /// the frontier buffers grow on demand and are excluded).  The budget
  /// governor pre-reserves this per sampling thread before a governed fused
  /// window (consumer "sampler.fused_lanes") and falls back to the scalar
  /// engine — byte-identical output — when refused (DESIGN.md §12).
  [[nodiscard]] static std::size_t lane_bytes(const CsrGraph &graph);

private:
  /// Growable uninitialized append buffer for the per-lane BFS frontiers.
  /// std::vector::resize would value-initialize the headroom the branchless
  /// appends need — one wasted store per scanned edge — so this keeps raw
  /// storage and a separate length.
  struct FrontierBuffer {
    std::unique_ptr<vertex_t[]> data;
    std::size_t len = 0;
    std::size_t cap = 0;

    void ensure(std::size_t need) {
      if (need <= cap) return;
      std::size_t fresh_cap = std::max<std::size_t>(need, cap ? cap * 2 : 64);
      auto fresh = std::make_unique_for_overwrite<vertex_t[]>(fresh_cap);
      std::copy_n(data.get(), len, fresh.get());
      data = std::move(fresh);
      cap = fresh_cap;
    }
  };

  void run_ic(unsigned lanes, RRRSet *outs);
  void run_lt(unsigned lanes, RRRSet *outs);
  /// Rebuilds outs[0..lanes) sorted from the visited lane masks: one
  /// vertex-ordered scan replaces 64 per-set sorts (counts[l] = final size
  /// of lane l's set, accumulated during the traversal).
  void emit_sorted(unsigned lanes, const std::size_t *counts, RRRSet *outs);

  const CsrGraph &graph_;
  LaneMaskVector visited_;
  /// Distinct vertices whose lane-mask word is nonzero, maintained
  /// branchlessly: sized num_vertices + 1 up front so the hot loop can
  /// append with a masked increment (the append stores first and masks the
  /// length increment after, so the store slot must stay valid even once
  /// every vertex is already touched).
  std::vector<vertex_t> touched_;
  std::size_t touched_len_ = 0;
  /// thresholds_[e] = ceil(weight(e) * 2^53) for flat in-edge index e:
  /// uniform_unit(x) < weight  ⟺  (x >> 11) < thresholds_[e], exactly —
  /// weight is a float (24-bit significand), so weight * 2^53 is an exact
  /// double and the ceiling is the exact integer compare bound.  Turns the
  /// per-edge Bernoulli test into one integer compare, no FP.
  std::vector<std::uint64_t> thresholds_;
  /// Hot-loop edge stream, one word per in-edge:
  /// (thresholds_[e] >> 22) << 32 | target-vertex.  A single 8-byte load
  /// yields the target and the top 32 bits of the 54-bit threshold, so the
  /// kernel streams the same bytes per edge as the scalar engine's
  /// Adjacency walk; the (x >> 33) vs threshold-high compare decides every
  /// draw except the ~2^-31 ties, which fall back to thresholds_.
  std::vector<std::uint64_t> packed_edges_;
  std::array<BufferedPhilox, kLanes> rng_;
  std::array<FrontierBuffer, kLanes> frontier_;
  std::array<FrontierBuffer, kLanes> next_;
  std::array<vertex_t, kLanes> current_{};
  std::uint64_t words_ = 0;
  std::uint64_t passes_ = 0;
};

/// Fused counterpart of sample_sequential: appends samples until
/// \p target_total, batching kLanes consecutive indices per kernel call.
void sample_sequential_fused(const CsrGraph &graph, DiffusionModel model,
                             std::uint64_t target_total, std::uint64_t seed,
                             RRRCollection &collection);

/// Fused counterpart of sample_multithreaded: slots are pre-grown and
/// filled by a dynamic-schedule parallel for over kLanes-sample blocks, one
/// FusedSampler per thread.  Bit-identical to sample_sequential for every
/// thread count.
void sample_multithreaded_fused(const CsrGraph &graph, DiffusionModel model,
                                std::uint64_t target_total, std::uint64_t seed,
                                unsigned num_threads, RRRCollection &collection);

/// Fused counterpart of sample_counter_indices: generates the RRR sets at
/// the given global sample indices and appends them in the order given.
std::uint64_t sample_counter_indices_fused(
    const CsrGraph &graph, DiffusionModel model, std::uint64_t seed,
    std::span<const std::uint64_t> indices, unsigned num_threads,
    RRRCollection &collection);

} // namespace ripples

#endif // RIPPLES_IMM_SAMPLER_FUSED_HPP
