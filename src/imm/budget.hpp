/// \file budget.hpp
/// \brief The RRR memory-budget governor (DESIGN.md §12).
///
/// At scale the RRR collection is the dominant allocation of every IMM
/// driver, and theta is data-dependent: a run that fits on one graph OOM-kills
/// on the next.  The governor turns that cliff into a ladder.  Admission of
/// new samples is chunked and charged against MemoryTracker's budget
/// *before* generation (estimate-ahead: the reservation is the enforcement
/// point and the deterministic oom-fault site; actual footprints are
/// reconciled after admission with unchecked bookkeeping).  When a
/// reservation is refused the store degrades in documented order:
///
///   1. switch the stored sets to CompressedRRRCollection (re-encode in
///      place, typically 3-10x smaller; selection decodes on iterate);
///   2. shed the in-flight batch and re-admit at halved granularity, down
///      to one sample at a time;
///   3. stop: shared-memory drivers raise BudgetEarlyStop, caught by the
///      martingale skeleton which finishes selection over the samples it
///      has and reports `degraded` with the certified epsilon'
///      (theta.hpp::certified_epsilon); the distributed driver instead
///      flushes pending checkpoint snapshots and throws
///      MemoryBudgetExceeded naming the consumer — rank-local truncation
///      would silently break the cross-rank theta agreement.
///
/// Every outcome is a valid answer or a diagnostic; no path aborts.  A run
/// with no budget, no forced compression, and no oom faults never
/// constructs a governed store — the drivers keep their exact pre-governor
/// code path (the <2% disabled-overhead criterion).
#ifndef RIPPLES_IMM_BUDGET_HPP
#define RIPPLES_IMM_BUDGET_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "imm/rrr_collection.hpp"
#include "imm/select.hpp"
#include "support/memory.hpp"
#include "support/metrics.hpp"

namespace ripples {

/// When the governor may switch RRR storage to the compressed
/// representation.  `Auto` compresses only under budget pressure; `Always`
/// forces it from the first sample (the determinism tests and the
/// compression leg of check.sh use this); `Off` removes the rung — the
/// ladder goes straight from shedding to stopping.
enum class CompressMode { Auto, Always, Off };

/// RIPPLES_RRR_COMPRESS: `auto` (default), `always`, or `off`.  Any other
/// value terminates with a diagnostic — a typo'd mode would silently turn a
/// forced-compression test into a false pass.
[[nodiscard]] CompressMode compress_mode_from_env();

/// RIPPLES_MEM_BUDGET: RRR budget in bytes, 0/unset = unlimited.  A
/// non-numeric value terminates with a diagnostic.
[[nodiscard]] std::size_t mem_budget_from_env();

/// RRR-store scrubbing intensity (DESIGN.md §14).  `Off` pays nothing;
/// `On` verifies the stored arena's checksums before every seed selection;
/// `Paranoid` additionally verifies before every iterate kernel (the
/// distributed counting/retirement passes).  A failed verification is
/// repaired in place by regenerating the damaged block from its RNG
/// coordinates (PR 3's healing machinery at storage granularity) and only
/// escalates when regeneration is not byte-identical.
enum class ScrubMode { Off, On, Paranoid };

/// RIPPLES_SCRUB_RRR: `off` (default), `on`, or `paranoid`.  Any other
/// value terminates with a diagnostic — a typo'd mode would silently turn a
/// scrub test into a false pass.
[[nodiscard]] ScrubMode scrub_mode_from_env();

/// Spelling used by the CLI and the RunReport (off/on/paranoid).
[[nodiscard]] const char *to_string(ScrubMode mode);

namespace detail {

/// Control-flow signal of ladder rung 3 on the shared-memory drivers: the
/// store cannot admit more samples, \p achieved is what it holds.  Caught
/// by run_imm_martingale, which finishes with what it has and marks the
/// report degraded.  Never escapes to callers.
struct BudgetEarlyStop {
  std::uint64_t achieved = 0;
};

/// kind=oom entries of \p fault_plan translated for
/// MemoryTracker::install_oom_faults; falls back to RIPPLES_FAULTS when the
/// plan string is empty, mirroring the communicator's merge rule.
[[nodiscard]] std::vector<OomFaultSpec>
oom_faults_from_plan(const std::string &fault_plan);

/// RAII installation of one run's budget and oom-fault plan into the
/// process-wide MemoryTracker; the destructor restores the unlimited,
/// fault-free state.  Drivers construct one for the duration of the run.
class ScopedBudget {
public:
  ScopedBudget(std::size_t budget_bytes, CompressMode compress,
               std::vector<OomFaultSpec> oom_faults);
  ~ScopedBudget();

  ScopedBudget(const ScopedBudget &) = delete;
  ScopedBudget &operator=(const ScopedBudget &) = delete;

  /// True when the run needs a governed store at all: a finite budget, a
  /// forced representation, or an installed oom fault.  (A fault with no
  /// governed store would never reach a reservation site and silently turn
  /// a failure test into a false pass, so faults alone force governance.)
  [[nodiscard]] bool governed() const { return governed_; }

private:
  bool governed_;
};

/// Budget-governed RRR storage: holds either the plain or the compressed
/// representation behind the admission ladder above.  Only constructed when
/// ScopedBudget::governed(); the ungoverned drivers never route through it.
class RRRStore {
public:
  struct Policy {
    std::size_t budget_bytes = 0;
    CompressMode compress = CompressMode::Auto;
    /// Rung 3 behaviour: true (distributed) throws MemoryBudgetExceeded
    /// after flushing pending checkpoint snapshots; false (shared-memory)
    /// raises BudgetEarlyStop for the certified-early-stop path.
    bool hard_refusal = false;
    /// Name reported by MemoryBudgetExceeded and the mem.budget trace.
    const char *consumer = "imm.rrr";
    /// Initial admission granularity in samples; halved on shed, floor 1.
    std::uint64_t chunk = 16384;
    /// Storage scrubbing (DESIGN.md §14).  Checksums exist only on the
    /// compressed arena, and repair replays admission windows through the
    /// recorded generators, so drivers must only enable this when their
    /// generators are pure functions of (first, count) — counter-sequence
    /// RNG mode; the leapfrog engines are stateful and keep this Off, the
    /// same silent-no-op rule as work stealing.
    ScrubMode scrub = ScrubMode::Off;
  };

  explicit RRRStore(const Policy &policy);
  ~RRRStore();

  RRRStore(const RRRStore &) = delete;
  RRRStore &operator=(const RRRStore &) = delete;

  [[nodiscard]] bool using_compressed() const { return compressed_active_; }
  [[nodiscard]] std::size_t size() const {
    return compressed_active_ ? compressed_.size() : plain_.size();
  }
  [[nodiscard]] std::size_t footprint_bytes() const {
    return compressed_active_ ? compressed_.footprint_bytes()
                              : plain_.footprint_bytes();
  }
  [[nodiscard]] std::size_t total_associations() const {
    return compressed_active_ ? compressed_.total_associations()
                              : plain_.total_associations();
  }

  /// Generator for one admission batch: produce the caller's samples for
  /// the global index window [first, first + count) into \p scratch.  On
  /// the shared-memory drivers every index is the caller's; the distributed
  /// driver generates only its rank's leapfrog slice of the window.
  using WindowGenerator = std::function<void(
      RRRCollection &scratch, std::uint64_t first, std::uint64_t count)>;

  /// Admits the window [from, to) in budget-charged chunks, walking the
  /// degradation ladder on refusal.  \p from must be the end of the
  /// previously admitted window (the drivers' extend_to contract).
  void extend_window(std::uint64_t from, std::uint64_t to,
                     const WindowGenerator &generate);

  /// Seed selection over the active representation — identical seeds and
  /// tie-breaking in either (the determinism tests assert it).  Under
  /// ScrubMode::On/Paranoid a scrub pass runs first, so selection never
  /// consumes unverified bytes.
  [[nodiscard]] SelectionResult select(vertex_t num_vertices, std::uint32_t k,
                                       unsigned num_threads);

  // Kernels of the distributed selection protocol, dispatched to the active
  // representation.  Under ScrubMode::Paranoid each one scrubs first.
  void count_into(std::span<std::uint32_t> counters);
  std::uint64_t retire(vertex_t seed, std::span<std::uint32_t> counters,
                       std::vector<std::uint8_t> &retired);
  std::uint64_t retire(vertex_t seed, std::span<std::uint32_t> counters,
                       std::vector<std::uint8_t> &retired,
                       std::span<std::uint32_t> pending_dec,
                       std::vector<vertex_t> &pending_touched);

  /// Records every stored sample's size into \p out (the report histogram).
  void record_sizes(metrics::HistogramData &out);

  /// One scrub pass over the active representation: verify block CRCs,
  /// regenerate any damaged block's samples bit-identically from the
  /// admission journal's (window, generator) coordinates, re-encode in
  /// place, and re-verify.  Returns the number of blocks repaired.  A no-op
  /// when scrubbing is Off or the plain representation is active (no
  /// contiguous arena to checksum — the collective-level CRCs still cover
  /// its exchanges).  Throws std::runtime_error when repair is impossible
  /// (journal gap or non-identical regeneration).
  std::size_t scrub();

  /// Deterministic fault-injection surface for tests and DESIGN.md §14's
  /// corruption drills: flips one bit of the compressed arena.  Returns
  /// false when no compressed payload exists to damage.
  bool flip_stored_bit(std::size_t bit);

private:
  [[nodiscard]] std::size_t estimate_bytes(std::uint64_t count) const;
  void admit(RRRCollection &scratch, std::uint64_t window_units);
  void switch_to_compressed();
  void reconcile();
  [[noreturn]] void stop_or_throw(std::size_t refused_bytes);

  /// One budget-admitted chunk, journalled for scrub repair: the samples at
  /// set indices [set_first, set_first + set_count) were produced by
  /// generators_[generator] over the global window [first, first + count).
  struct AdmissionWindow {
    std::uint64_t first = 0;
    std::uint64_t count = 0;
    std::uint64_t set_first = 0;
    std::uint64_t set_count = 0;
    std::size_t generator = 0;
  };

  Policy policy_;
  RRRCollection plain_;
  CompressedRRRCollection compressed_;
  bool compressed_active_ = false;
  /// Bytes currently reserved in MemoryTracker for the stored sets.
  std::size_t charged_ = 0;
  /// Window indices admitted so far — the denominator of the running
  /// bytes-per-index estimate (on the distributed driver a rank owns only
  /// ~1/p of each window; estimating per *window* index absorbs that).
  std::uint64_t window_units_ = 0;
  /// Scrub repair state (empty unless policy_.scrub != Off): the admission
  /// journal plus one stored copy of each extend_window generator.
  std::vector<AdmissionWindow> journal_;
  std::vector<WindowGenerator> generators_;
};

} // namespace detail
} // namespace ripples

#endif // RIPPLES_IMM_BUDGET_HPP
