#include "imm/theta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.hpp"
#include "support/trace.hpp"

namespace ripples {

namespace {

/// Thread-safe ln Γ(x).  std::lgamma writes the global `signgam`, a data
/// race when concurrent mpsim rank threads build ThetaSchedules; the
/// arguments here are all positive, where the sign is always +1, so the
/// reentrant variant is a drop-in replacement.
double log_gamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

} // namespace

double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  if (k == 0 || k == n) return 0.0;
  return log_gamma(static_cast<double>(n) + 1) -
         log_gamma(static_cast<double>(k) + 1) -
         log_gamma(static_cast<double>(n - k) + 1);
}

ThetaSchedule::ThetaSchedule(std::uint64_t num_vertices, std::uint32_t k,
                             double epsilon, double l)
    : num_vertices_(static_cast<double>(num_vertices)), epsilon_(epsilon) {
  RIPPLES_ASSERT_MSG(num_vertices >= 2, "graph too small for IMM");
  RIPPLES_ASSERT_MSG(epsilon > 0 && epsilon < 1, "epsilon must be in (0,1)");
  RIPPLES_ASSERT_MSG(k >= 1 && k <= num_vertices, "invalid seed count");

  const double n = num_vertices_;
  const double ln_n = std::log(n);
  const double log2_n = std::log2(n);
  // Union bound over the two phases (Tang et al., Sec. 4.2): inflate l so
  // that both the estimation and the final guarantee hold with 1 - 1/n^l.
  const double l_adjusted = l * (1.0 + std::log(2.0) / ln_n);
  const double logcnk = log_binomial(num_vertices, k);

  epsilon_prime_ = std::sqrt(2.0) * epsilon;
  lambda_prime_ = (2.0 + 2.0 / 3.0 * epsilon_prime_) *
                  (logcnk + l_adjusted * ln_n + std::log(log2_n)) * n /
                  (epsilon_prime_ * epsilon_prime_);

  const double e = std::exp(1.0);
  const double alpha = std::sqrt(l_adjusted * ln_n + std::log(2.0));
  const double beta =
      std::sqrt((1.0 - 1.0 / e) * (logcnk + l_adjusted * ln_n + std::log(2.0)));
  const double term = (1.0 - 1.0 / e) * alpha + beta;
  lambda_star_ = 2.0 * n * term * term / (epsilon * epsilon);

  max_iterations_ = static_cast<std::uint32_t>(std::max(1.0, std::floor(log2_n)));
  trace::instant("theta", "theta.schedule", "max_iterations", max_iterations_,
                 "lambda_star", static_cast<std::uint64_t>(lambda_star_));
}

std::uint64_t ThetaSchedule::target_samples(std::uint32_t x) const {
  RIPPLES_ASSERT(x >= 1 && x <= max_iterations_);
  const double divisor = num_vertices_ / std::exp2(static_cast<double>(x));
  return static_cast<std::uint64_t>(std::ceil(lambda_prime_ / divisor));
}

bool ThetaSchedule::accept(std::uint32_t x, double coverage_fraction,
                           double *lower_bound) const {
  RIPPLES_ASSERT(x >= 1 && x <= max_iterations_);
  RIPPLES_ASSERT(coverage_fraction >= 0.0 && coverage_fraction <= 1.0);
  const double estimate = num_vertices_ * coverage_fraction;
  const double threshold =
      (1.0 + epsilon_prime_) * num_vertices_ / std::exp2(static_cast<double>(x));
  if (estimate < threshold) return false;
  if (lower_bound) *lower_bound = estimate / (1.0 + epsilon_prime_);
  trace::instant("theta", "theta.accept", "x", x, "estimate",
                 static_cast<std::uint64_t>(estimate));
  return true;
}

std::uint64_t ThetaSchedule::final_theta(double lower_bound) const {
  RIPPLES_ASSERT(lower_bound >= 1.0);
  return static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(lambda_star_ / lower_bound)));
}

double certified_epsilon(std::uint64_t num_vertices, std::uint32_t k,
                         double epsilon, double l, double lower_bound,
                         std::uint64_t achieved) {
  if (achieved == 0) return ThetaSchedule::kMaxCertifiedEpsilon;
  ThetaSchedule schedule(num_vertices, k, epsilon, l);
  // theta(eps'') <= achieved  <=>  eps'' >= eps * sqrt(lambda*(eps) /
  // (LB * achieved)); the max with 1 clamps at the requested accuracy.
  const double needed =
      schedule.lambda_star() /
      (std::max(1.0, lower_bound) * static_cast<double>(achieved));
  const double eps = epsilon * std::sqrt(std::max(1.0, needed));
  return std::min(eps, ThetaSchedule::kMaxCertifiedEpsilon);
}

} // namespace ripples
