#include "imm/budget.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <stdexcept>
#include <string>
#include <utility>

#include "mpsim/fault.hpp"
#include "support/assert.hpp"
#include "support/checkpoint.hpp"
#include "support/trace.hpp"

namespace ripples {

CompressMode compress_mode_from_env() {
  const char *value = std::getenv("RIPPLES_RRR_COMPRESS");
  if (value == nullptr || *value == '\0' || std::strcmp(value, "auto") == 0)
    return CompressMode::Auto;
  if (std::strcmp(value, "always") == 0) return CompressMode::Always;
  if (std::strcmp(value, "off") == 0) return CompressMode::Off;
  std::fprintf(stderr,
               "RIPPLES_RRR_COMPRESS: expected auto|always|off, got '%s'\n",
               value);
  std::exit(2);
}

std::size_t mem_budget_from_env() {
  const char *value = std::getenv("RIPPLES_MEM_BUDGET");
  if (value == nullptr || *value == '\0') return 0;
  char *end = nullptr;
  const unsigned long long bytes = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr,
                 "RIPPLES_MEM_BUDGET: expected a byte count, got '%s'\n",
                 value);
    std::exit(2);
  }
  return static_cast<std::size_t>(bytes);
}

ScrubMode scrub_mode_from_env() {
  const char *value = std::getenv("RIPPLES_SCRUB_RRR");
  if (value == nullptr || *value == '\0' || std::strcmp(value, "off") == 0)
    return ScrubMode::Off;
  if (std::strcmp(value, "on") == 0) return ScrubMode::On;
  if (std::strcmp(value, "paranoid") == 0) return ScrubMode::Paranoid;
  std::fprintf(stderr,
               "RIPPLES_SCRUB_RRR: expected off|on|paranoid, got '%s'\n",
               value);
  std::exit(2);
}

const char *to_string(ScrubMode mode) {
  switch (mode) {
  case ScrubMode::On: return "on";
  case ScrubMode::Paranoid: return "paranoid";
  case ScrubMode::Off: break;
  }
  return "off";
}

namespace detail {

namespace {

metrics::Counter &compress_switches_counter() {
  static metrics::Counter &counter =
      metrics::Registry::instance().counter("mem.budget.compress_switches");
  return counter;
}

metrics::Counter &shed_batches_counter() {
  static metrics::Counter &counter =
      metrics::Registry::instance().counter("mem.budget.shed_batches");
  return counter;
}

metrics::Counter &scrub_passes_counter() {
  static metrics::Counter &counter =
      metrics::Registry::instance().counter("integrity.scrub_passes");
  return counter;
}

metrics::Counter &scrub_corrupt_counter() {
  static metrics::Counter &counter =
      metrics::Registry::instance().counter("integrity.scrub_corrupt_blocks");
  return counter;
}

metrics::Counter &scrub_repaired_counter() {
  static metrics::Counter &counter =
      metrics::Registry::instance().counter("integrity.scrub_repaired_blocks");
  return counter;
}

} // namespace

std::vector<OomFaultSpec> oom_faults_from_plan(const std::string &fault_plan) {
  const mpsim::FaultPlan plan = fault_plan.empty()
                                    ? mpsim::fault_plan_from_env()
                                    : mpsim::parse_fault_plan(fault_plan);
  std::vector<OomFaultSpec> faults;
  for (const mpsim::FaultSpec &fault : plan)
    if (fault.kind == mpsim::FaultSpec::Kind::Oom)
      faults.push_back({fault.rank, fault.site});
  return faults;
}

ScopedBudget::ScopedBudget(std::size_t budget_bytes, CompressMode compress,
                           std::vector<OomFaultSpec> oom_faults)
    : governed_(budget_bytes > 0 || compress == CompressMode::Always ||
                !oom_faults.empty()) {
  MemoryTracker &tracker = MemoryTracker::instance();
  tracker.set_budget(budget_bytes);
  if (!oom_faults.empty()) tracker.install_oom_faults(std::move(oom_faults));
}

ScopedBudget::~ScopedBudget() {
  MemoryTracker &tracker = MemoryTracker::instance();
  tracker.set_budget(0);
  tracker.clear_oom_faults();
}

RRRStore::RRRStore(const Policy &policy) : policy_(policy) {
  RIPPLES_ASSERT(policy_.chunk >= 1);
  if (policy_.compress == CompressMode::Always) compressed_active_ = true;
  // Checksums are accumulated on append, so they must be live before the
  // first admission (including switch_to_compressed's re-encode).
  if (policy_.scrub != ScrubMode::Off) compressed_.enable_checksums();
}

RRRStore::~RRRStore() {
  if (charged_ != 0) MemoryTracker::instance().release(charged_);
}

std::size_t RRRStore::estimate_bytes(std::uint64_t count) const {
  // Bytes per *window* index, learned from what is already admitted (the
  // distributed driver owns only ~1/p of every window; a per-index average
  // absorbs that without knowing p).  The first batch uses a fixed guess —
  // enforcement converges after one reconciliation.
  const double per_unit =
      window_units_ > 0
          ? static_cast<double>(charged_) / static_cast<double>(window_units_)
          : 64.0;
  return static_cast<std::size_t>(
      std::max(1.0, std::ceil(per_unit * static_cast<double>(count))));
}

void RRRStore::extend_window(std::uint64_t from, std::uint64_t to,
                             const WindowGenerator &generate) {
  MemoryTracker &tracker = MemoryTracker::instance();
  // Scrub repair replays admissions through the generator that produced
  // them, so keep one copy per extend_window call (drivers enabling scrub
  // pass replay-safe generators — pure functions of the window, with any
  // mutable driver state captured by value).
  if (policy_.scrub != ScrubMode::Off) generators_.push_back(generate);
  std::uint64_t next = from;
  while (next < to) {
    std::uint64_t count = std::min<std::uint64_t>(policy_.chunk, to - next);
    std::size_t reserved = 0;
    for (;;) {
      const std::size_t estimate = estimate_bytes(count);
      if (tracker.try_reserve(estimate, policy_.consumer)) {
        reserved = estimate;
        break;
      }
      if (!compressed_active_ && policy_.compress != CompressMode::Off) {
        switch_to_compressed();
        continue;
      }
      if (count > 1) {
        count /= 2;
        if (metrics::enabled()) shed_batches_counter().add(1);
        trace::instant("mem", "mem.budget", "shed_to_samples", count);
        continue;
      }
      stop_or_throw(estimate);
    }
    RRRCollection scratch;
    generate(scratch, next, count);
    if (policy_.scrub != ScrubMode::Off)
      journal_.push_back({next, count, size(), scratch.size(),
                          generators_.size() - 1});
    admit(scratch, count);
    tracker.release(reserved);
    reconcile();
    next += count;
  }
}

void RRRStore::admit(RRRCollection &scratch, std::uint64_t window_units) {
  if (compressed_active_) {
    for (const RRRSet &set : scratch.sets()) compressed_.append(set);
  } else {
    std::vector<RRRSet> &dest = plain_.mutable_sets();
    std::vector<RRRSet> &src = scratch.mutable_sets();
    dest.insert(dest.end(), std::make_move_iterator(src.begin()),
                std::make_move_iterator(src.end()));
  }
  window_units_ += window_units;
}

void RRRStore::switch_to_compressed() {
  RIPPLES_ASSERT(!compressed_active_);
  const std::size_t before = plain_.footprint_bytes();
  for (const RRRSet &set : plain_.sets()) compressed_.append(set);
  compressed_.shrink_to_fit();
  plain_ = RRRCollection{}; // release, not clear: the slack is the point
  compressed_active_ = true;
  if (metrics::enabled()) compress_switches_counter().add(1);
  trace::instant("mem", "mem.budget", "compressed_sets", compressed_.size(),
                 "from_bytes", before);
  reconcile();
}

void RRRStore::reconcile() {
  MemoryTracker &tracker = MemoryTracker::instance();
  const std::size_t actual = footprint_bytes();
  if (actual > charged_)
    tracker.force_reserve(actual - charged_);
  else if (actual < charged_)
    tracker.release(charged_ - actual);
  charged_ = actual;
}

void RRRStore::stop_or_throw(std::size_t refused_bytes) {
  MemoryTracker &tracker = MemoryTracker::instance();
  if (policy_.hard_refusal) {
    // Make the run's resumable state durable before diagnosing: the caller
    // will surface the refusal as a run failure, and a re-run with a larger
    // budget must be able to --resume past the work already done.
    checkpoint::flush_pending_snapshots();
    throw MemoryBudgetExceeded(policy_.consumer, refused_bytes,
                               tracker.reserved_bytes(), tracker.budget());
  }
  throw BudgetEarlyStop{size()};
}

std::size_t RRRStore::scrub() {
  if (policy_.scrub == ScrubMode::Off || !compressed_active_) return 0;
  if (metrics::enabled()) scrub_passes_counter().add(1);
  const std::vector<std::size_t> corrupt = compressed_.verify_blocks();
  if (corrupt.empty()) return 0;
  if (metrics::enabled()) scrub_corrupt_counter().add(corrupt.size());
  for (const std::size_t block : corrupt) {
    trace::instant("mem", "rrr.scrub_corrupt", "block", block);
    const auto [set_first, set_last] = compressed_.block_set_range(block);
    // Reassemble the block's samples from the admission journal: every
    // overlapping window replays through the generator that produced it,
    // bit-identical by the counter-stream contract.
    std::vector<RRRSet> sets(set_last - set_first);
    std::vector<std::uint8_t> have(set_last - set_first, 0);
    for (const AdmissionWindow &window : journal_) {
      const std::uint64_t window_last = window.set_first + window.set_count;
      if (window.set_first >= set_last || window_last <= set_first) continue;
      RRRCollection scratch;
      generators_[window.generator](scratch, window.first, window.count);
      if (scratch.size() != window.set_count)
        throw std::runtime_error(
            "RRR scrub: window replay produced " +
            std::to_string(scratch.size()) + " sets where the admission "
            "journal recorded " + std::to_string(window.set_count) +
            " — the generator is not replay-safe");
      const std::uint64_t lo = std::max<std::uint64_t>(set_first,
                                                       window.set_first);
      const std::uint64_t hi = std::min<std::uint64_t>(set_last, window_last);
      for (std::uint64_t j = lo; j < hi; ++j) {
        sets[j - set_first] =
            std::move(scratch.mutable_sets()[j - window.set_first]);
        have[j - set_first] = 1;
      }
    }
    if (std::find(have.begin(), have.end(), std::uint8_t{0}) != have.end())
      throw std::runtime_error(
          "RRR scrub: damaged block " + std::to_string(block) +
          " has samples missing from the admission journal");
    compressed_.repair_block(block, sets);
    if (metrics::enabled()) scrub_repaired_counter().add(1);
    trace::instant("mem", "rrr.scrub_repair", "block", block);
  }
  if (!compressed_.verify_blocks().empty())
    throw std::runtime_error(
        "RRR scrub: a repaired block still fails verification");
  return corrupt.size();
}

bool RRRStore::flip_stored_bit(std::size_t bit) {
  if (!compressed_active_ || compressed_.total_associations() == 0)
    return false;
  compressed_.flip_payload_bit(bit);
  return true;
}

SelectionResult RRRStore::select(vertex_t num_vertices, std::uint32_t k,
                                 unsigned num_threads) {
  scrub();
  if (compressed_active_)
    return select_seeds_compressed(num_vertices, k, compressed_);
  if (num_threads > 1)
    return select_seeds_multithreaded(num_vertices, k, plain_.sets(),
                                      num_threads);
  return select_seeds(num_vertices, k, plain_.sets());
}

void RRRStore::count_into(std::span<std::uint32_t> counters) {
  if (policy_.scrub == ScrubMode::Paranoid) scrub();
  if (compressed_active_)
    count_memberships(compressed_, counters);
  else
    count_memberships(plain_.sets(), counters);
}

std::uint64_t RRRStore::retire(vertex_t seed, std::span<std::uint32_t> counters,
                               std::vector<std::uint8_t> &retired) {
  if (policy_.scrub == ScrubMode::Paranoid) scrub();
  return compressed_active_
             ? retire_samples_containing(seed, compressed_, counters, retired)
             : retire_samples_containing(seed, plain_.sets(), counters,
                                         retired);
}

std::uint64_t RRRStore::retire(vertex_t seed, std::span<std::uint32_t> counters,
                               std::vector<std::uint8_t> &retired,
                               std::span<std::uint32_t> pending_dec,
                               std::vector<vertex_t> &pending_touched) {
  if (policy_.scrub == ScrubMode::Paranoid) scrub();
  return compressed_active_
             ? retire_samples_containing(seed, compressed_, counters, retired,
                                         pending_dec, pending_touched)
             : retire_samples_containing(seed, plain_.sets(), counters,
                                         retired, pending_dec,
                                         pending_touched);
}

void RRRStore::record_sizes(metrics::HistogramData &out) {
  if (compressed_active_) {
    CompressedRRRCollection::Cursor cursor = compressed_.cursor();
    while (!cursor.at_end()) {
      const std::uint32_t count = cursor.next_header();
      cursor.skip_members(count);
      out.record(count);
    }
  } else {
    for (const RRRSet &set : plain_.sets()) out.record(set.size());
  }
}

} // namespace detail
} // namespace ripples
