/// \file sampler.hpp
/// \brief Sample (Alg. 3): batch generation of RRR sets.
///
/// All engines share one indexing discipline: RRR set i of an experiment is
/// drawn from the Philox stream (seed, i) and its root is the stream's first
/// draw.  The collection R is therefore a pure function of (graph, model,
/// seed, |R|) — identical whether it was produced sequentially, by any
/// number of OpenMP threads, or by any number of mpsim ranks.  This is the
/// property the paper obtains from leap-frog LCG splitting ("accurate
/// generation of pseudorandom numbers in parallel is critical"), delivered
/// here with a counter-based generator; the faithful leap-frog LCG variant
/// lives in imm_distributed.cpp and is compared in ablation_rng_streams.
#ifndef RIPPLES_IMM_SAMPLER_HPP
#define RIPPLES_IMM_SAMPLER_HPP

#include <cstdint>

#include "imm/rrr_collection.hpp"

namespace ripples {

/// Appends samples to \p collection until it holds \p target_total sets.
/// No-op if it already does.
void sample_sequential(const CsrGraph &graph, DiffusionModel model,
                       std::uint64_t target_total, std::uint64_t seed,
                       RRRCollection &collection);

/// OpenMP variant: slots are pre-grown and filled by a dynamic-schedule
/// parallel for, one RRRGenerator per thread.  Bit-identical to
/// sample_sequential for every thread count.
void sample_multithreaded(const CsrGraph &graph, DiffusionModel model,
                          std::uint64_t target_total, std::uint64_t seed,
                          unsigned num_threads, RRRCollection &collection);

/// Arena variant: same samples, appended into FlatRRRCollection.
void sample_sequential_flat(const CsrGraph &graph, DiffusionModel model,
                            std::uint64_t target_total, std::uint64_t seed,
                            FlatRRRCollection &collection);

/// Baseline variant: same samples, stored dual-direction (sample list plus
/// per-vertex incidence), reproducing the Table 2 baseline's footprint and
/// insertion cost.
void sample_hypergraph(const CsrGraph &graph, DiffusionModel model,
                       std::uint64_t target_total, std::uint64_t seed,
                       HypergraphCollection &collection);

} // namespace ripples

#endif // RIPPLES_IMM_SAMPLER_HPP
