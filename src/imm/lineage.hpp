/// \file lineage.hpp
/// \brief IMM's algorithmic ancestors: RIS (Borgs et al., SODA 2014) and
/// TIM+ (Tang et al., SIGMOD 2014).
///
/// Section 2 of the paper traces the lineage: Borgs et al. introduced
/// reverse-influence sampling with a *threshold* stopping rule (generate
/// RRR sets until the total traversal work crosses a budget); Tang et al.'s
/// TIM/TIM+ made it practical by estimating the number of samples from a
/// KPT lower bound on OPT; IMM (Tang et al. 2015, the algorithm this paper
/// parallelizes) replaced KPT with the martingale estimator.  Implementing
/// the ancestors lets the benches show *why* IMM is the right algorithm to
/// parallelize: equal guarantees from far fewer samples.
///
/// All three share GenerateRR, the storage representation, and the greedy
/// selection of this library, so the comparison isolates the sample-count
/// policies.
#ifndef RIPPLES_IMM_LINEAGE_HPP
#define RIPPLES_IMM_LINEAGE_HPP

#include "imm/imm.hpp"

namespace ripples {

/// RIS with Borgs et al.'s threshold rule: keep generating RRR sets until
/// the cumulative number of edges examined by the reverse BFS reaches
/// beta = C (m + n) log(n) / epsilon^2 (C a quality constant, theory uses
/// C >= 1; practical runs scale it down).  Returns the standard ImmResult;
/// `theta` reports the number of samples the budget bought.
struct RisOptions {
  double epsilon = 0.5;
  std::uint32_t k = 50;
  DiffusionModel model = DiffusionModel::IndependentCascade;
  std::uint64_t seed = 2019;
  /// Multiplier on the theoretical budget (1.0 = the SODA'14 constant-free
  /// form; the authors note practical runs can be far below theory).
  double budget_scale = 1.0;
};
[[nodiscard]] ImmResult ris_threshold(const CsrGraph &graph,
                                      const RisOptions &options);

/// TIM+ (Tang et al. 2014): theta = lambda / KPT+ with
/// lambda = (8 + 2 eps) n (l log n + log C(n,k) + log 2) eps^-2.
/// KPT is estimated by the KptEstimation procedure of the paper: for
/// i = 1..log2(n)-1, draw c_i = 6 lambda' log n / 2^i samples and measure
/// their average width-based weight kappa; stop when kappa/c_i > 1/2^i.
/// This implementation follows the published pseudocode with the same
/// constants (l = 1) and reuses the library's samplers; the refinement
/// step of TIM+ (greedy on a pilot collection to lift KPT to KPT+) is
/// included.
struct TimOptions {
  double epsilon = 0.5;
  std::uint32_t k = 50;
  DiffusionModel model = DiffusionModel::IndependentCascade;
  std::uint64_t seed = 2019;
  double l = 1.0;
};
[[nodiscard]] ImmResult tim_plus(const CsrGraph &graph,
                                 const TimOptions &options);

} // namespace ripples

#endif // RIPPLES_IMM_LINEAGE_HPP
