/// \file steal.hpp
/// \brief Chunk machinery for the deterministic work-stealing sampler
/// (DESIGN.md §13).
///
/// RRR draws are partitioned into chunks keyed by their *global stream
/// indices*: a chunk names a leapfrog stream plus a half-open window of
/// global draw indices, never an executor.  Because the counter-mode RNG
/// derives every draw's Philox coordinates from its global index alone, any
/// thread or rank may execute any chunk and the emitted set is byte-for-byte
/// the one the home executor would have produced — so every steal schedule
/// yields the identical collection, and healing can reason about *which
/// draws exist* instead of *who ran them*.
#ifndef RIPPLES_IMM_STEAL_HPP
#define RIPPLES_IMM_STEAL_HPP

#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "diffusion/model.hpp"
#include "graph/csr.hpp"
#include "imm/rrr_collection.hpp"

namespace ripples::detail {

/// A stealable unit of sampling work: the draws of leapfrog \p stream whose
/// global indices fall in [\p begin, \p end).  The bounds are global-index
/// bounds, not stream-local counts; executors enumerate the member draws
/// with leapfrog_first_index(begin, stream, num_streams) and step by the
/// stream stride.
struct ChunkRange {
  std::uint64_t stream = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  friend bool operator==(const ChunkRange &, const ChunkRange &) = default;
};

/// Splits the draws of \p stream (one of \p num_streams leapfrog streams)
/// with global indices in [\p from, \p to) into chunks of at most \p chunk
/// draws each.  chunk == 0 is clamped to 1.  Boundary arithmetic saturates
/// at UINT64_MAX instead of wrapping, so a caller asking for chunks near the
/// top of the index space gets a final short chunk, not an infinite loop.
[[nodiscard]] std::vector<ChunkRange>
make_stream_chunks(std::uint64_t from, std::uint64_t to, std::uint64_t stream,
                   std::uint64_t num_streams, std::uint64_t chunk);

/// Number of draws of \p stream with global indices in [begin, end).
[[nodiscard]] std::uint64_t chunk_draw_count(const ChunkRange &chunk,
                                             std::uint64_t num_streams);

/// Mutex-guarded chunk deque used by the intra-rank steal loop (and, shape
/// for shape, by the mpsim inter-rank queues).  Owners pop from the front;
/// thieves split from the back, taking ceil(n/2) so repeated steals halve
/// the victim's backlog.
class ChunkQueue {
public:
  void push(const ChunkRange &chunk);

  /// Owner-side pop (front).  Returns false when empty.
  bool pop(ChunkRange &out);

  /// Thief-side split: moves ceil(n/2) chunks from the back of this queue
  /// into \p out and returns how many were taken (0 when empty).
  std::size_t steal_half(std::vector<ChunkRange> &out);

  [[nodiscard]] std::size_t size() const;

private:
  mutable std::mutex mutex_;
  std::deque<ChunkRange> items_;
};

/// Per-stream record of which global draw ranges this rank has executed.
/// Under flexible placement (inter-rank stealing or a skewed partition) the
/// stream -> rank map no longer says where samples live, so healing gathers
/// every survivor's inventory and regenerates exactly the ranges nobody
/// holds.  Ranges merge on insert, so a window executed as many chunks
/// collapses back to one entry.
class StreamInventory {
public:
  void add(std::uint64_t stream, std::uint64_t begin, std::uint64_t end);

  /// Flat (stream, begin, end) triples for allgatherv.
  [[nodiscard]] std::vector<std::uint64_t> serialize() const;

  [[nodiscard]] bool empty() const { return streams_.empty(); }

private:
  struct Range {
    std::uint64_t begin;
    std::uint64_t end;
  };
  struct Stream {
    std::uint64_t id;
    std::vector<Range> ranges;
  };
  std::vector<Stream> streams_; // sorted by id

  friend std::vector<ChunkRange>
  missing_ranges(std::span<const std::uint64_t> gathered,
                 std::uint64_t num_streams, std::uint64_t target);
};

/// Given the concatenated serialized inventories of every survivor, returns
/// the per-stream gaps: ranges of [0, \p target) that contain draws of some
/// stream but appear in no inventory.  Deterministic — every rank feeding
/// it the same gathered bytes computes the same gap list, so the healed
/// regeneration schedule needs no further coordination.
[[nodiscard]] std::vector<ChunkRange>
missing_ranges(std::span<const std::uint64_t> gathered,
               std::uint64_t num_streams, std::uint64_t target);

/// Intra-rank chunked counter sampler: splits \p indices into chunks of
/// \p chunk positions dealt round-robin to per-thread queues, then runs the
/// steal loop across \p num_threads OpenMP threads (honouring the
/// steal_schedule perturbation hook).  Every position j writes its set into
/// slot first_slot + j of \p collection, so the result is byte-identical to
/// sample_counter_indices / sample_counter_indices_fused on the same
/// indices regardless of which thread ran which chunk.  Returns the number
/// of sets generated.
std::uint64_t sample_counter_chunked(const CsrGraph &graph,
                                     DiffusionModel model, std::uint64_t seed,
                                     std::span<const std::uint64_t> indices,
                                     unsigned num_threads, std::uint64_t chunk,
                                     bool fused, RRRCollection &collection);

} // namespace ripples::detail

#endif // RIPPLES_IMM_STEAL_HPP
