/// \file rrr_collection.hpp
/// \brief The two RRR-set storage representations compared in Table 2.
///
/// The paper's key memory optimization (Section 3.1): previous
/// implementations store the sample/vertex incidence "in two directions
/// using the notion of a hypergraph ... each association between a sample
/// and a vertex is stored twice", which speeds up seed selection but can
/// exhaust memory.  IMMOPT stores only one direction — each sample as a
/// sorted vertex list — and compensates during selection with binary search
/// over the sorted lists.
///
///  * RRRCollection       — the paper's compact representation (IMMOPT).
///  * HypergraphCollection — the dual-direction baseline (Tang et al.'s IMM),
///    built here to reproduce Table 2's time and memory comparison.
///
/// Scrubbing (DESIGN.md §14): the two arena representations optionally carry
/// checksums over their contiguous payloads — per-block CRC-32 for the
/// compressed arena, 64 KiB pages for the flat arena — maintained
/// incrementally on append and verified before the selection kernels consume
/// the bytes.  Because every stored sample is a pure function of its RNG
/// coordinates, a damaged block is *repairable*: the owner regenerates the
/// block's sets bit-identically and re-encodes them in place.  Checksums are
/// opt-in (enable_checksums) so the default path pays nothing.
#ifndef RIPPLES_IMM_RRR_COLLECTION_HPP
#define RIPPLES_IMM_RRR_COLLECTION_HPP

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "imm/rrr.hpp"

namespace ripples {

/// Compact storage: samples only, each a sorted vertex list.
class RRRCollection {
public:
  [[nodiscard]] std::size_t size() const { return sets_.size(); }
  [[nodiscard]] const std::vector<RRRSet> &sets() const { return sets_; }
  [[nodiscard]] std::vector<RRRSet> &mutable_sets() { return sets_; }

  void add(RRRSet &&set) { sets_.push_back(std::move(set)); }

  /// Appends \p count empty slots and returns the index of the first, so a
  /// parallel sampler can fill disjoint slots without synchronization.
  /// Throws std::length_error with the offending sizes if the request
  /// cannot be represented — the callers grow before entering their
  /// parallel fill regions, so an absurd theta surfaces here as one
  /// catchable diagnostic instead of a bad_alloc on a worker thread.
  std::size_t grow(std::size_t count);

  /// Exact heap bytes held by the representation (vector headers + vertex
  /// payload capacity) — the quantity Table 2 reports per implementation.
  [[nodiscard]] std::size_t footprint_bytes() const;

  /// Total number of (sample, vertex) associations.
  [[nodiscard]] std::size_t total_associations() const;

  void clear() { sets_.clear(); }

private:
  std::vector<RRRSet> sets_;
};

/// Arena storage: all samples concatenated in one vertex array with an
/// offsets index — the logical next step of the paper's compact
/// representation.  Removes the per-sample vector header (24 bytes) and
/// capacity slack, improves counting locality (one linear array), at the
/// price of append-only semantics.  Compared against RRRCollection in
/// ablation_storage.
class FlatRRRCollection {
public:
  /// Scrub granularity: one CRC-32 per this many payload bytes.  Large
  /// enough that the checksum array is negligible, small enough that one
  /// flipped bit damages (and re-derives) a bounded byte range.
  static constexpr std::size_t kPageBytes = 64 * 1024;

  [[nodiscard]] std::size_t size() const { return offsets_.size() - 1; }

  /// Sorted members of sample \p j.
  [[nodiscard]] std::span<const vertex_t> sample(std::size_t j) const {
    RIPPLES_DEBUG_ASSERT(j + 1 < offsets_.size());
    return {payload_.data() + offsets_[j],
            static_cast<std::size_t>(offsets_[j + 1] - offsets_[j])};
  }

  /// Appends one sample (members already sorted).  Throws std::length_error
  /// when the concatenated payload would no longer be representable.
  void append(std::span<const vertex_t> members);

  [[nodiscard]] std::size_t footprint_bytes() const {
    return payload_.capacity() * sizeof(vertex_t) +
           offsets_.capacity() * sizeof(std::uint64_t) +
           page_crcs_.capacity() * sizeof(std::uint32_t);
  }

  [[nodiscard]] std::size_t total_associations() const {
    return payload_.size();
  }

  /// Releases growth slack after the collection stops growing.
  void shrink_to_fit() {
    payload_.shrink_to_fit();
    offsets_.shrink_to_fit();
    page_crcs_.shrink_to_fit();
  }

  /// Turns on page checksums (idempotent).  Already-appended payload is
  /// hashed on the spot; subsequent appends extend the page CRCs
  /// incrementally.  Off by default so the ungoverned path pays nothing.
  void enable_checksums();
  [[nodiscard]] bool checksums_enabled() const { return checksums_; }

  /// Recomputes every page CRC and returns the indices of pages whose
  /// payload no longer matches.  Empty when checksums are disabled.
  [[nodiscard]] std::vector<std::size_t> verify_pages() const;

  /// Deterministic fault-injection surface (the storage-level analogue of
  /// mpsim's kind=corrupt): flips one payload bit, leaving the stored page
  /// CRC describing the clean bytes.
  void flip_payload_bit(std::size_t bit);

  /// Repair: overwrites payload vertices [offset, offset + values.size())
  /// with regenerated (bit-identical) values and rehashes the touched
  /// pages, so a subsequent verify_pages() reflects the restored bytes.
  void overwrite(std::size_t offset, std::span<const vertex_t> values);

private:
  void extend_page_crcs();
  void rehash_page(std::size_t page);

  std::vector<vertex_t> payload_;
  std::vector<std::uint64_t> offsets_{0};
  std::vector<std::uint32_t> page_crcs_; // finalized (full) pages
  std::uint32_t tail_crc_ = 0;           // running CRC of the partial page
  std::size_t hashed_bytes_ = 0;
  bool checksums_ = false;
};

/// Delta+varint compressed arena (DESIGN.md §12): each sample is one record
/// `[varint member_count][varint first][varint deltas...]` — members are
/// sorted and unique, so consecutive differences are small positive integers
/// that LEB128 encodes in 1-2 bytes on the paper's graphs (HBMax, arXiv
/// 2208.00613, and Wang et al., arXiv 2311.07554, report 3-10x on exactly
/// this structure).  Selection decodes on iterate: the greedy kernels only
/// ever scan the collection front to back, so the index stores one byte
/// offset per kBlockSize sets (amortized ~0 bytes/set) instead of one per
/// set, and retired sets are *skipped* (continuation-bit scan, no value
/// decode).  The budget governor switches RRR storage to this
/// representation when the uncompressed arena would exceed the budget.
class CompressedRRRCollection {
public:
  /// Sets per index block; random access decodes at most this many headers.
  static constexpr std::size_t kBlockSize = 256;

  [[nodiscard]] std::size_t size() const { return num_sets_; }
  [[nodiscard]] std::size_t total_associations() const {
    return total_associations_;
  }
  [[nodiscard]] std::size_t footprint_bytes() const {
    return payload_.capacity() * sizeof(std::uint8_t) +
           block_offsets_.capacity() * sizeof(std::uint64_t) +
           block_crcs_.capacity() * sizeof(std::uint32_t);
  }

  /// Appends one sample (members sorted ascending, unique).  Throws
  /// std::length_error when the encoded payload would no longer be
  /// representable, mirroring FlatRRRCollection::append.
  void append(std::span<const vertex_t> members);

  /// Decodes sample \p j into \p out (cleared first).  Block-indexed: seeks
  /// to the enclosing block, then skips at most kBlockSize - 1 records.
  void decode_set(std::size_t j, std::vector<vertex_t> &out) const;

  /// Releases growth slack after the collection stops growing.
  void shrink_to_fit() {
    payload_.shrink_to_fit();
    block_offsets_.shrink_to_fit();
    block_crcs_.shrink_to_fit();
  }

  void clear() {
    payload_.clear();
    block_offsets_.clear();
    block_crcs_.clear();
    tail_crc_ = 0;
    num_sets_ = 0;
    total_associations_ = 0;
  }

  /// Turns on per-block checksums (idempotent).  Already-encoded payload is
  /// hashed on the spot; subsequent appends maintain a running CRC of the
  /// open block, finalized when the block fills.  Off by default so the
  /// budget-without-scrub path pays nothing.
  void enable_checksums();
  [[nodiscard]] bool checksums_enabled() const { return checksums_; }

  [[nodiscard]] std::size_t num_blocks() const {
    return block_offsets_.size();
  }

  /// The half-open set-index range [first, last) encoded by block \p b.
  [[nodiscard]] std::pair<std::size_t, std::size_t>
  block_set_range(std::size_t b) const {
    return {b * kBlockSize, std::min(num_sets_, (b + 1) * kBlockSize)};
  }

  /// Recomputes every block CRC and returns the indices of blocks whose
  /// encoded bytes no longer match.  Empty when checksums are disabled.
  [[nodiscard]] std::vector<std::size_t> verify_blocks() const;

  /// Repair: re-encodes block \p b from \p sets (the block's samples in
  /// set-index order, regenerated bit-identically from their RNG
  /// coordinates), overwrites the damaged bytes in place, and refreshes the
  /// block CRC.  Throws std::runtime_error when the re-encoding does not
  /// match the block's byte length — regeneration was not bit-identical, so
  /// the damage is not repairable and must escalate.
  void repair_block(std::size_t b, std::span<const RRRSet> sets);

  /// Deterministic fault-injection surface (the storage-level analogue of
  /// mpsim's kind=corrupt): flips one payload bit, leaving the stored block
  /// CRC describing the clean bytes.
  void flip_payload_bit(std::size_t bit);

  /// Sequential decode-on-iterate reader, the access pattern of every
  /// selection kernel.  next_header() positions at a record's members and
  /// returns its member count; the caller then either decode_members() or
  /// skip_members() (retired sets cost a continuation-bit scan only).
  class Cursor {
  public:
    explicit Cursor(const CompressedRRRCollection &collection)
        : p_(collection.payload_.data()),
          end_(collection.payload_.data() + collection.payload_.size()) {}

    [[nodiscard]] bool at_end() const { return p_ == end_; }
    [[nodiscard]] std::uint32_t next_header();
    /// Decodes the current record's \p count members into \p out (cleared
    /// first; members come out sorted, exactly as encoded).
    void decode_members(std::uint32_t count, std::vector<vertex_t> &out);
    /// Skips the current record's \p count member varints without decoding.
    void skip_members(std::uint32_t count);

  private:
    friend class CompressedRRRCollection;
    [[nodiscard]] std::uint64_t read_varint();
    const std::uint8_t *p_;
    const std::uint8_t *end_;
  };

  [[nodiscard]] Cursor cursor() const { return Cursor(*this); }

private:
  void put_varint(std::uint64_t value);
  /// Encodes one record (count header + delta varints) into \p out —
  /// shared by append and repair_block so a repaired block is byte-for-byte
  /// what append would have produced.
  static void encode_record(std::vector<std::uint8_t> &out,
                            std::span<const vertex_t> members);
  /// Byte range [begin, end) of block \p b in payload_.
  [[nodiscard]] std::pair<std::size_t, std::size_t>
  block_byte_range(std::size_t b) const {
    return {block_offsets_[b], b + 1 < block_offsets_.size()
                                   ? block_offsets_[b + 1]
                                   : payload_.size()};
  }
  [[nodiscard]] std::uint32_t stored_block_crc(std::size_t b) const {
    return b < block_crcs_.size() ? block_crcs_[b] : tail_crc_;
  }

  std::vector<std::uint8_t> payload_;
  std::vector<std::uint64_t> block_offsets_; // byte offset of set kBlockSize*i
  std::vector<std::uint32_t> block_crcs_;    // finalized (closed) blocks
  std::uint32_t tail_crc_ = 0;               // running CRC of the open block
  std::size_t num_sets_ = 0;
  std::size_t total_associations_ = 0;
  bool checksums_ = false;
};

/// Dual-direction storage: samples plus, per vertex, the ids of the samples
/// containing it.  ~2x the associations of RRRCollection, as the paper
/// describes for prior implementations.
class HypergraphCollection {
public:
  explicit HypergraphCollection(vertex_t num_vertices)
      : incidence_(num_vertices) {}

  [[nodiscard]] std::size_t size() const { return sets_.size(); }
  [[nodiscard]] const std::vector<RRRSet> &sets() const { return sets_; }
  [[nodiscard]] const std::vector<std::uint32_t> &
  samples_containing(vertex_t v) const {
    return incidence_[v];
  }

  /// Adds a sample and indexes every member vertex back to it.  Throws
  /// std::length_error past 2^32 samples: incidence ids are stored as
  /// uint32_t (the representation under comparison), so a larger collection
  /// would silently alias sample ids.
  void add(RRRSet &&set);

  [[nodiscard]] std::size_t footprint_bytes() const;
  [[nodiscard]] std::size_t total_associations() const;

private:
  std::vector<RRRSet> sets_;
  std::vector<std::vector<std::uint32_t>> incidence_;
};

} // namespace ripples

#endif // RIPPLES_IMM_RRR_COLLECTION_HPP
