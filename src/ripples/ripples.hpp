/// \file ripples.hpp
/// \brief Umbrella header: the full public API of the library.
///
/// Reproduction of "Fast and Scalable Implementations of Influence
/// Maximization Algorithms" (Minutoli et al., IEEE CLUSTER 2019).  The
/// typical flow mirrors Algorithm 1 of the paper:
///
/// \code
///   using namespace ripples;
///   CsrGraph graph = materialize(find_dataset("cit-HepTh"), 0.1, 1);
///   assign_uniform_weights(graph, 1);           // IC probabilities
///   ImmOptions options{.epsilon = 0.5, .k = 50};
///   ImmResult result = imm_multithreaded(graph, options);
///   auto influence = estimate_influence(graph, result.seeds,
///                                       options.model, 10000, 7);
/// \endcode
#ifndef RIPPLES_RIPPLES_HPP
#define RIPPLES_RIPPLES_HPP

// Support
#include "support/assert.hpp"
#include "support/bitvector.hpp"
#include "support/checkpoint.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/memory.hpp"
#include "support/metrics.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

// Pseudorandom number generation
#include "rng/distributions.hpp"
#include "rng/lcg.hpp"
#include "rng/philox.hpp"
#include "rng/philox_buffered.hpp"
#include "rng/splitmix.hpp"
#include "rng/xoshiro.hpp"

// Graphs
#include "graph/components.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/registry.hpp"
#include "graph/stats.hpp"
#include "graph/types.hpp"
#include "graph/weights.hpp"

// Message-passing runtime
#include "mpsim/communicator.hpp"

// Diffusion models
#include "diffusion/model.hpp"
#include "diffusion/simulate.hpp"

// Influence maximization (the paper's core contribution)
#include "imm/greedy.hpp"
#include "imm/imm.hpp"
#include "imm/lineage.hpp"
#include "imm/rrr.hpp"
#include "imm/rrr_collection.hpp"
#include "imm/sampler.hpp"
#include "imm/sampler_fused.hpp"
#include "imm/select.hpp"
#include "imm/sketches.hpp"
#include "imm/theta.hpp"

// Centrality (case-study reference measures)
#include "centrality/betweenness.hpp"
#include "centrality/communities.hpp"
#include "centrality/degree.hpp"
#include "centrality/kcore.hpp"
#include "centrality/pagerank.hpp"

// Biology case study
#include "bio/enrichment.hpp"
#include "bio/expression.hpp"
#include "bio/inference.hpp"

#endif // RIPPLES_RIPPLES_HPP
