/// \file degree.hpp
/// \brief Degree centrality and top-k ranking.
///
/// Section 5 of the paper compares IMM's seed set against vertex rankings
/// by degree and betweenness centrality; these helpers produce those
/// rankings with deterministic tie-breaking (smaller id first).
#ifndef RIPPLES_CENTRALITY_DEGREE_HPP
#define RIPPLES_CENTRALITY_DEGREE_HPP

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace ripples {

/// Total degree (in + out) per vertex — SNAP's convention for "degree" on
/// directed graphs, and the measure the case study uses.
[[nodiscard]] std::vector<std::uint32_t> degree_centrality(const CsrGraph &graph);

/// Indices of the top-k entries of \p scores, descending, ties to smaller
/// id.  Shared by every centrality ranking.
[[nodiscard]] std::vector<vertex_t> top_k_by_score(std::span<const double> scores,
                                                   std::uint32_t k);
[[nodiscard]] std::vector<vertex_t>
top_k_by_score(std::span<const std::uint32_t> scores, std::uint32_t k);

} // namespace ripples

#endif // RIPPLES_CENTRALITY_DEGREE_HPP
