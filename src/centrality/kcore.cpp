#include "centrality/kcore.hpp"

#include <algorithm>
#include <numeric>

namespace ripples {

std::vector<std::uint32_t> core_numbers(const CsrGraph &graph) {
  const vertex_t n = graph.num_vertices();
  std::vector<std::uint32_t> degree(n);
  std::uint32_t max_degree = 0;
  for (vertex_t v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(graph.out_degree(v) + graph.in_degree(v));
    max_degree = std::max(max_degree, degree[v]);
  }

  // Matula-Beck peeling with bucket sort by current degree.
  std::vector<std::uint32_t> bucket_start(max_degree + 2, 0);
  for (vertex_t v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (std::uint32_t d = 1; d <= max_degree + 1; ++d)
    bucket_start[d] += bucket_start[d - 1];

  std::vector<vertex_t> ordered(n);      // vertices sorted by current degree
  std::vector<std::uint32_t> position(n); // index of each vertex in `ordered`
  {
    std::vector<std::uint32_t> cursor(bucket_start.begin(),
                                      bucket_start.end() - 1);
    for (vertex_t v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]];
      ordered[position[v]] = v;
      ++cursor[degree[v]];
    }
  }

  std::vector<std::uint32_t> core(degree);
  auto decrease_degree = [&](vertex_t u) {
    // Swap u to the front of its degree bucket, then shrink its degree.
    std::uint32_t d = core[u];
    std::uint32_t front = bucket_start[d];
    vertex_t front_vertex = ordered[front];
    std::swap(ordered[position[u]], ordered[front]);
    std::swap(position[u], position[front_vertex]);
    ++bucket_start[d];
    --core[u];
  };

  for (std::uint32_t i = 0; i < n; ++i) {
    vertex_t v = ordered[i];
    // core[v] is now final; peel v from its not-yet-peeled neighbors.
    auto relax = [&](vertex_t u) {
      if (position[u] > i && core[u] > core[v]) decrease_degree(u);
    };
    for (const Adjacency &out : graph.out_neighbors(v)) relax(out.vertex);
    for (const Adjacency &in : graph.in_neighbors(v)) relax(in.vertex);
  }
  return core;
}

std::vector<vertex_t> k_shell_seeds(const CsrGraph &graph, std::uint32_t k) {
  std::vector<std::uint32_t> core = core_numbers(graph);
  std::vector<vertex_t> order(graph.num_vertices());
  std::iota(order.begin(), order.end(), vertex_t{0});
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](vertex_t a, vertex_t b) {
                      if (core[a] != core[b]) return core[a] > core[b];
                      std::size_t da = graph.out_degree(a) + graph.in_degree(a);
                      std::size_t db = graph.out_degree(b) + graph.in_degree(b);
                      if (da != db) return da > db;
                      return a < b;
                    });
  order.resize(k);
  return order;
}

} // namespace ripples
