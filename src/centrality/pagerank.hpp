/// \file pagerank.hpp
/// \brief PageRank by power iteration.
///
/// A standard topological ranking used as an influence-maximization
/// comparator throughout the literature (and a natural fourth method for
/// the Section 5 style comparisons alongside degree, betweenness, and
/// IMM).
#ifndef RIPPLES_CENTRALITY_PAGERANK_HPP
#define RIPPLES_CENTRALITY_PAGERANK_HPP

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace ripples {

struct PageRankOptions {
  double damping = 0.85;
  std::uint32_t max_iterations = 100;
  /// Stop when the L1 change of the score vector falls below this.
  double tolerance = 1e-10;
};

/// PageRank scores (sum to 1).  Dangling vertices (out-degree 0)
/// redistribute their mass uniformly, the standard correction.
[[nodiscard]] std::vector<double> pagerank(const CsrGraph &graph,
                                           const PageRankOptions &options = {});

} // namespace ripples

#endif // RIPPLES_CENTRALITY_PAGERANK_HPP
