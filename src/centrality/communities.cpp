#include "centrality/communities.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "support/assert.hpp"

namespace ripples {

CommunityAssignment label_propagation(const CsrGraph &graph,
                                      unsigned max_sweeps, std::uint64_t seed) {
  const vertex_t n = graph.num_vertices();
  std::vector<std::uint32_t> label(n);
  std::iota(label.begin(), label.end(), 0u);

  std::vector<vertex_t> order(n);
  std::iota(order.begin(), order.end(), vertex_t{0});
  Xoshiro256 rng(seed);

  std::unordered_map<std::uint32_t, std::uint32_t> votes;
  for (unsigned sweep = 0; sweep < max_sweeps; ++sweep) {
    // Seeded shuffle: asynchronous updates in random order avoid the
    // label oscillations of synchronous propagation.
    for (std::size_t i = n; i > 1; --i)
      std::swap(order[i - 1], order[uniform_index(rng, i)]);

    bool changed = false;
    for (vertex_t v : order) {
      votes.clear();
      for (const Adjacency &out : graph.out_neighbors(v)) ++votes[label[out.vertex]];
      for (const Adjacency &in : graph.in_neighbors(v)) ++votes[label[in.vertex]];
      if (votes.empty()) continue;
      // Most frequent neighbor label; ties to the numerically smallest so
      // the result is deterministic given the visit order.
      std::uint32_t best_label = label[v];
      std::uint32_t best_votes = 0;
      for (const auto &[candidate, count] : votes) {
        if (count > best_votes ||
            (count == best_votes && candidate < best_label)) {
          best_label = candidate;
          best_votes = count;
        }
      }
      if (best_label != label[v]) {
        label[v] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Compact labels to [0, num_communities).
  CommunityAssignment assignment;
  assignment.label_of.resize(n);
  std::unordered_map<std::uint32_t, std::uint32_t> compact;
  for (vertex_t v = 0; v < n; ++v) {
    auto [it, inserted] =
        compact.try_emplace(label[v], assignment.num_communities);
    if (inserted) {
      ++assignment.num_communities;
      assignment.size_of.push_back(0);
    }
    assignment.label_of[v] = it->second;
    ++assignment.size_of[it->second];
  }
  return assignment;
}

std::vector<vertex_t>
community_proportional_seeds(const CsrGraph &graph,
                             const CommunityAssignment &communities,
                             std::uint32_t k, double probability) {
  const vertex_t n = graph.num_vertices();
  RIPPLES_ASSERT(k >= 1 && k <= n);
  RIPPLES_ASSERT(communities.label_of.size() == n);

  // Largest-remainder apportionment of k seeds over communities.
  const std::uint32_t c = communities.num_communities;
  std::vector<std::uint32_t> quota(c, 0);
  std::vector<std::pair<double, std::uint32_t>> remainders(c);
  std::uint32_t assigned = 0;
  for (std::uint32_t community = 0; community < c; ++community) {
    double share = static_cast<double>(k) *
                   static_cast<double>(communities.size_of[community]) /
                   static_cast<double>(n);
    quota[community] = static_cast<std::uint32_t>(share);
    // A community cannot host more seeds than members.
    quota[community] =
        std::min(quota[community], communities.size_of[community]);
    assigned += quota[community];
    remainders[community] = {share - static_cast<double>(quota[community]),
                             community};
  }
  std::sort(remainders.begin(), remainders.end(), [](const auto &a, const auto &b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  });
  for (std::size_t i = 0; assigned < k; i = (i + 1) % remainders.size()) {
    std::uint32_t community = remainders[i].second;
    if (quota[community] < communities.size_of[community]) {
      ++quota[community];
      ++assigned;
    }
  }

  // Fill each community's quota by degree discounting restricted to the
  // community (inter-community edges are ignored — the shortcoming the
  // paper highlights, preserved deliberately for fidelity).
  std::vector<double> discounted(n);
  std::vector<std::uint32_t> selected_neighbors(n, 0);
  std::vector<std::uint8_t> selected(n, 0);
  for (vertex_t v = 0; v < n; ++v)
    discounted[v] = static_cast<double>(graph.out_degree(v));

  std::vector<vertex_t> seeds;
  seeds.reserve(k);
  for (std::uint32_t community = 0; community < c; ++community) {
    for (std::uint32_t picked = 0; picked < quota[community]; ++picked) {
      vertex_t best = n;
      for (vertex_t v = 0; v < n; ++v) {
        if (selected[v] || communities.label_of[v] != community) continue;
        if (best == n || discounted[v] > discounted[best] ||
            (discounted[v] == discounted[best] && v < best))
          best = v;
      }
      RIPPLES_ASSERT(best < n);
      selected[best] = 1;
      seeds.push_back(best);
      for (const Adjacency &out : graph.out_neighbors(best)) {
        vertex_t v = out.vertex;
        if (selected[v] || communities.label_of[v] != community) continue;
        auto d = static_cast<double>(graph.out_degree(v));
        auto t = static_cast<double>(++selected_neighbors[v]);
        discounted[v] = d - 2.0 * t - (d - t) * t * probability;
      }
    }
  }
  return seeds;
}

} // namespace ripples
