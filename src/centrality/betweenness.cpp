#include "centrality/betweenness.hpp"

#include <algorithm>
#include <omp.h>

#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "support/assert.hpp"

namespace ripples {

namespace {

/// Scratch space for one Brandes source accumulation; reused across sources.
struct BrandesScratch {
  explicit BrandesScratch(vertex_t n)
      : distance(n, -1), num_paths(n, 0), dependency(n, 0.0) {
    order.reserve(n);
  }

  std::vector<std::int32_t> distance;
  std::vector<double> num_paths;
  std::vector<double> dependency;
  std::vector<vertex_t> order; ///< BFS visit order (for reverse sweep)

  void reset_touched() {
    for (vertex_t v : order) {
      distance[v] = -1;
      num_paths[v] = 0;
      dependency[v] = 0.0;
    }
    order.clear();
  }
};

/// Accumulates the dependency contributions of one source into `scores`.
void accumulate_source(const CsrGraph &graph, vertex_t source,
                       BrandesScratch &scratch, std::vector<double> &scores) {
  scratch.reset_touched();
  scratch.distance[source] = 0;
  scratch.num_paths[source] = 1.0;
  scratch.order.push_back(source);

  // Forward BFS counting shortest paths.  `order` doubles as the queue.
  for (std::size_t head = 0; head < scratch.order.size(); ++head) {
    vertex_t v = scratch.order[head];
    for (const Adjacency &out : graph.out_neighbors(v)) {
      vertex_t w = out.vertex;
      if (scratch.distance[w] < 0) {
        scratch.distance[w] = scratch.distance[v] + 1;
        scratch.order.push_back(w);
      }
      if (scratch.distance[w] == scratch.distance[v] + 1)
        scratch.num_paths[w] += scratch.num_paths[v];
    }
  }

  // Reverse sweep accumulating dependencies (Brandes' theorem).
  for (auto it = scratch.order.rbegin(); it != scratch.order.rend(); ++it) {
    vertex_t v = *it;
    for (const Adjacency &out : graph.out_neighbors(v)) {
      vertex_t w = out.vertex;
      if (scratch.distance[w] == scratch.distance[v] + 1)
        scratch.dependency[v] += scratch.num_paths[v] / scratch.num_paths[w] *
                                 (1.0 + scratch.dependency[w]);
    }
    if (v != source) scores[v] += scratch.dependency[v];
  }
}

std::vector<double> brandes_over_sources(const CsrGraph &graph,
                                         std::span<const vertex_t> sources,
                                         double rescale) {
  const vertex_t n = graph.num_vertices();
  std::vector<double> scores(n, 0.0);
#pragma omp parallel
  {
    BrandesScratch scratch(n);
    std::vector<double> local(n, 0.0);
#pragma omp for schedule(dynamic, 8)
    for (std::int64_t i = 0; i < static_cast<std::int64_t>(sources.size()); ++i)
      accumulate_source(graph, sources[static_cast<std::size_t>(i)], scratch,
                        local);
#pragma omp critical(ripples_betweenness_merge)
    for (vertex_t v = 0; v < n; ++v) scores[v] += local[v];
  }
  if (rescale != 1.0)
    for (double &s : scores) s *= rescale;
  return scores;
}

} // namespace

std::vector<double> betweenness_centrality(const CsrGraph &graph) {
  std::vector<vertex_t> sources(graph.num_vertices());
  for (vertex_t v = 0; v < graph.num_vertices(); ++v) sources[v] = v;
  return brandes_over_sources(graph, sources, 1.0);
}

std::vector<double> betweenness_centrality_sampled(const CsrGraph &graph,
                                                   vertex_t num_sources,
                                                   std::uint64_t seed) {
  RIPPLES_ASSERT(num_sources >= 1);
  num_sources = std::min(num_sources, graph.num_vertices());
  Xoshiro256 rng(seed);
  std::vector<vertex_t> sources(num_sources);
  for (vertex_t &s : sources)
    s = static_cast<vertex_t>(uniform_index(rng, graph.num_vertices()));
  double rescale = static_cast<double>(graph.num_vertices()) /
                   static_cast<double>(num_sources);
  return brandes_over_sources(graph, sources, rescale);
}

} // namespace ripples
