/// \file communities.hpp
/// \brief Community detection + community-based seed heuristics.
///
/// Section 2 of the paper surveys community-based influence maximization
/// (Wang et al., Chen et al., Halappanavar et al.) and notes its "major
/// shortcoming": disjoint community subgraphs ignore inter-community
/// edges.  This module supplies that family as a comparator — asynchronous
/// label propagation for the communities, and the proportional-allocation
/// heuristic of Halappanavar et al. (seeds split across communities in
/// proportion to community size, picked within each community by
/// discounted degree) — so the benches can demonstrate both its speed and
/// the quality gap the paper attributes to it.
#ifndef RIPPLES_CENTRALITY_COMMUNITIES_HPP
#define RIPPLES_CENTRALITY_COMMUNITIES_HPP

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace ripples {

struct CommunityAssignment {
  /// Community label per vertex, compacted to [0, num_communities).
  std::vector<std::uint32_t> label_of;
  std::uint32_t num_communities = 0;
  /// Vertices per community.
  std::vector<std::uint32_t> size_of;
};

/// Asynchronous label propagation (Raghavan et al.) over the undirected
/// view of the graph (an edge in either direction links the endpoints).
/// Deterministic in \p seed (vertex visit order is a seeded shuffle per
/// sweep); stops when a sweep changes no label or after \p max_sweeps.
[[nodiscard]] CommunityAssignment
label_propagation(const CsrGraph &graph, unsigned max_sweeps,
                  std::uint64_t seed);

/// Halappanavar et al.'s allocation heuristic: distribute the k seeds over
/// communities proportionally to community size (largest remainder method),
/// then fill each community's quota with its highest-degree-discount
/// vertices.  \p probability is the IC edge probability used by the
/// discount.
[[nodiscard]] std::vector<vertex_t>
community_proportional_seeds(const CsrGraph &graph,
                             const CommunityAssignment &communities,
                             std::uint32_t k, double probability);

} // namespace ripples

#endif // RIPPLES_CENTRALITY_COMMUNITIES_HPP
