/// \file kcore.hpp
/// \brief k-shell (k-core) decomposition.
///
/// Wu et al. (cited as [18] in the paper) select seeds from the innermost
/// k-shells.  The decomposition here is the standard peeling algorithm
/// over the undirected view (total degree), O(n + m) with bucketed
/// degrees, and a seed heuristic takes the top-k vertices by core number
/// (ties by degree, then id).
#ifndef RIPPLES_CENTRALITY_KCORE_HPP
#define RIPPLES_CENTRALITY_KCORE_HPP

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace ripples {

/// Core number per vertex (undirected view: in-degree + out-degree).
[[nodiscard]] std::vector<std::uint32_t> core_numbers(const CsrGraph &graph);

/// The k vertices with the highest core number (ties: higher total degree,
/// then smaller id) — the k-shell seed heuristic.
[[nodiscard]] std::vector<vertex_t> k_shell_seeds(const CsrGraph &graph,
                                                  std::uint32_t k);

} // namespace ripples

#endif // RIPPLES_CENTRALITY_KCORE_HPP
