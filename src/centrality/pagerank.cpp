#include "centrality/pagerank.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace ripples {

std::vector<double> pagerank(const CsrGraph &graph,
                             const PageRankOptions &options) {
  RIPPLES_ASSERT(options.damping > 0.0 && options.damping < 1.0);
  const vertex_t n = graph.num_vertices();
  if (n == 0) return {};

  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> scores(n, uniform);
  std::vector<double> next(n, 0.0);

  for (std::uint32_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    // Mass from dangling vertices is spread uniformly.
    double dangling_mass = 0.0;
    for (vertex_t v = 0; v < n; ++v)
      if (graph.out_degree(v) == 0) dangling_mass += scores[v];

    const double base =
        (1.0 - options.damping) * uniform +
        options.damping * dangling_mass * uniform;
    std::fill(next.begin(), next.end(), base);
    // Pull formulation over in-edges keeps the loop write-local.
    for (vertex_t v = 0; v < n; ++v) {
      double incoming = 0.0;
      for (const Adjacency &in : graph.in_neighbors(v))
        incoming += scores[in.vertex] /
                    static_cast<double>(graph.out_degree(in.vertex));
      next[v] += options.damping * incoming;
    }

    double delta = 0.0;
    for (vertex_t v = 0; v < n; ++v) delta += std::abs(next[v] - scores[v]);
    scores.swap(next);
    if (delta < options.tolerance) break;
  }
  return scores;
}

} // namespace ripples
