/// \file betweenness.hpp
/// \brief Brandes betweenness centrality (exact and source-sampled).
///
/// Betweenness is the second topological reference measure of the paper's
/// biology case study ("a measure of how many shortest paths linking two
/// random nodes pass through the node in question").  Exact Brandes is
/// O(nm); for the case-study-sized networks that is fine, and a uniform
/// source-sampled estimator is provided for larger inputs.  The per-source
/// accumulations are independent, so the loop is OpenMP-parallel with
/// per-thread partial score vectors.
#ifndef RIPPLES_CENTRALITY_BETWEENNESS_HPP
#define RIPPLES_CENTRALITY_BETWEENNESS_HPP

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace ripples {

/// Exact Brandes over unweighted shortest paths on the directed graph.
[[nodiscard]] std::vector<double> betweenness_centrality(const CsrGraph &graph);

/// Estimated betweenness from \p num_sources uniformly sampled sources,
/// rescaled by n / num_sources (unbiased).  Deterministic in \p seed.
[[nodiscard]] std::vector<double>
betweenness_centrality_sampled(const CsrGraph &graph, vertex_t num_sources,
                               std::uint64_t seed);

} // namespace ripples

#endif // RIPPLES_CENTRALITY_BETWEENNESS_HPP
