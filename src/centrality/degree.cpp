#include "centrality/degree.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"

namespace ripples {

std::vector<std::uint32_t> degree_centrality(const CsrGraph &graph) {
  std::vector<std::uint32_t> degree(graph.num_vertices());
  for (vertex_t v = 0; v < graph.num_vertices(); ++v)
    degree[v] = static_cast<std::uint32_t>(graph.out_degree(v) + graph.in_degree(v));
  return degree;
}

namespace {

template <typename Score>
std::vector<vertex_t> top_k_impl(std::span<const Score> scores, std::uint32_t k) {
  RIPPLES_ASSERT(k >= 1 && k <= scores.size());
  std::vector<vertex_t> order(scores.size());
  std::iota(order.begin(), order.end(), vertex_t{0});
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](vertex_t a, vertex_t b) {
                      return scores[a] > scores[b] ||
                             (scores[a] == scores[b] && a < b);
                    });
  order.resize(k);
  return order;
}

} // namespace

std::vector<vertex_t> top_k_by_score(std::span<const double> scores,
                                     std::uint32_t k) {
  return top_k_impl(scores, k);
}

std::vector<vertex_t> top_k_by_score(std::span<const std::uint32_t> scores,
                                     std::uint32_t k) {
  return top_k_impl(scores, k);
}

} // namespace ripples
