/// \file timing.hpp
/// \brief Shared wall-time accounting for graph construction routines.
///
/// Generators and weight assignment run once per experiment, off the solver
/// hot path, but their cost still belongs in the run report: on large R-MAT
/// instances construction can rival the IMM phases.  Each instrumented call
/// gets a "graph"-category trace span plus a registry counter
/// `<name>.micros`, surfaced through the report log's "registry" section.
#ifndef RIPPLES_GRAPH_TIMING_HPP
#define RIPPLES_GRAPH_TIMING_HPP

#include <string>

#include "support/metrics.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace ripples::detail {

/// RAII scope timing one construction call.  \p name must be a string
/// literal (the trace span borrows it).  The per-name counter lookup
/// allocates, which is fine here: construction is cold by definition.
class ScopedGraphTiming {
public:
  explicit ScopedGraphTiming(const char *name)
      : name_(name), span_("graph", name) {}

  ScopedGraphTiming(const ScopedGraphTiming &) = delete;
  ScopedGraphTiming &operator=(const ScopedGraphTiming &) = delete;

  ~ScopedGraphTiming() {
    if (!metrics::enabled()) return;
    auto micros = static_cast<std::uint64_t>(watch_.elapsed_seconds() * 1e6);
    metrics::Registry::instance()
        .counter(std::string(name_) + ".micros")
        .add(micros);
  }

private:
  const char *name_;
  trace::Span span_;
  StopWatch watch_;
};

} // namespace ripples::detail

#endif // RIPPLES_GRAPH_TIMING_HPP
