#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "graph/timing.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"
#include "support/assert.hpp"

namespace ripples {

namespace {

/// Packs an arc into one key for duplicate detection.
std::uint64_t arc_key(vertex_t s, vertex_t d) {
  return (static_cast<std::uint64_t>(s) << 32) | d;
}

} // namespace

EdgeList erdos_renyi(vertex_t num_vertices, edge_offset_t num_edges,
                     std::uint64_t seed) {
  detail::ScopedGraphTiming timing("graph.erdos_renyi");
  RIPPLES_ASSERT(num_vertices >= 2);
  const auto max_arcs = static_cast<edge_offset_t>(num_vertices) *
                        (num_vertices - 1);
  RIPPLES_ASSERT_MSG(num_edges <= max_arcs, "G(n,m) cannot host m arcs");

  Xoshiro256 rng(seed);
  EdgeList list;
  list.num_vertices = num_vertices;
  list.edges.reserve(num_edges);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(num_edges) * 2);
  while (list.edges.size() < num_edges) {
    auto s = static_cast<vertex_t>(uniform_index(rng, num_vertices));
    auto d = static_cast<vertex_t>(uniform_index(rng, num_vertices));
    if (s == d) continue;
    if (!seen.insert(arc_key(s, d)).second) continue;
    list.edges.push_back({s, d, 1.0f});
  }
  return list;
}

EdgeList barabasi_albert(vertex_t num_vertices, unsigned edges_per_vertex,
                         std::uint64_t seed) {
  detail::ScopedGraphTiming timing("graph.barabasi_albert");
  RIPPLES_ASSERT(edges_per_vertex >= 1);
  RIPPLES_ASSERT(num_vertices > edges_per_vertex);

  Xoshiro256 rng(seed);
  EdgeList list;
  list.num_vertices = num_vertices;

  // `targets` holds one entry per edge endpoint, so sampling uniformly from
  // it is sampling proportionally to degree (the standard BA trick).
  std::vector<vertex_t> endpoint_pool;
  endpoint_pool.reserve(static_cast<std::size_t>(num_vertices) *
                        edges_per_vertex * 2);

  // Seed clique over the first edges_per_vertex+1 vertices keeps early
  // attachment well-defined.
  for (vertex_t u = 0; u <= edges_per_vertex; ++u) {
    for (vertex_t v = 0; v <= edges_per_vertex; ++v) {
      if (u >= v) continue;
      list.edges.push_back({u, v, 1.0f});
      list.edges.push_back({v, u, 1.0f});
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }

  std::vector<vertex_t> chosen;
  for (vertex_t u = edges_per_vertex + 1; u < num_vertices; ++u) {
    chosen.clear();
    while (chosen.size() < edges_per_vertex) {
      auto idx = static_cast<std::size_t>(uniform_index(rng, endpoint_pool.size()));
      vertex_t candidate = endpoint_pool[idx];
      if (std::find(chosen.begin(), chosen.end(), candidate) != chosen.end())
        continue;
      chosen.push_back(candidate);
    }
    for (vertex_t v : chosen) {
      list.edges.push_back({u, v, 1.0f});
      list.edges.push_back({v, u, 1.0f});
      endpoint_pool.push_back(u);
      endpoint_pool.push_back(v);
    }
  }
  return list;
}

EdgeList watts_strogatz(vertex_t num_vertices, unsigned neighbors_per_side,
                        double beta, std::uint64_t seed) {
  detail::ScopedGraphTiming timing("graph.watts_strogatz");
  RIPPLES_ASSERT(num_vertices > 2 * neighbors_per_side);
  RIPPLES_ASSERT(beta >= 0.0 && beta <= 1.0);

  Xoshiro256 rng(seed);
  // Build the undirected ring-lattice edge set with rewiring, then emit both
  // arc directions.  `seen` prevents rewiring onto an existing edge.
  std::unordered_set<std::uint64_t> seen;
  auto undirected_key = [](vertex_t a, vertex_t b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  for (vertex_t u = 0; u < num_vertices; ++u) {
    for (unsigned j = 1; j <= neighbors_per_side; ++j) {
      vertex_t v = static_cast<vertex_t>((u + j) % num_vertices);
      edges.emplace_back(u, v);
      seen.insert(undirected_key(u, v));
    }
  }
  for (auto &[u, v] : edges) {
    if (!bernoulli(rng, beta)) continue;
    // Rewire the far endpoint to a uniform non-neighbor.
    for (int attempts = 0; attempts < 32; ++attempts) {
      auto w = static_cast<vertex_t>(uniform_index(rng, num_vertices));
      if (w == u || w == v) continue;
      if (!seen.insert(undirected_key(u, w)).second) continue;
      seen.erase(undirected_key(u, v));
      v = w;
      break;
    }
  }

  EdgeList list;
  list.num_vertices = num_vertices;
  list.edges.reserve(edges.size() * 2);
  for (auto [u, v] : edges) {
    list.edges.push_back({u, v, 1.0f});
    list.edges.push_back({v, u, 1.0f});
  }
  return list;
}

EdgeList rmat(const RmatParams &params, std::uint64_t seed) {
  detail::ScopedGraphTiming timing("graph.rmat");
  RIPPLES_ASSERT(params.scale >= 1 && params.scale <= 31);
  const double sum = params.a + params.b + params.c + params.d;
  RIPPLES_ASSERT_MSG(std::abs(sum - 1.0) < 1e-9,
                     "R-MAT quadrant probabilities must sum to 1");

  const vertex_t n = vertex_t{1} << params.scale;
  const auto target =
      static_cast<edge_offset_t>(params.edge_factor * static_cast<double>(n));

  Xoshiro256 rng(seed);
  EdgeList list;
  list.num_vertices = n;
  list.edges.reserve(target);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(target) * 2);

  while (list.edges.size() < target) {
    vertex_t row = 0, col = 0;
    // Per-edge noisy copy of the quadrant probabilities (smoothed Kronecker).
    double a = params.a, b = params.b, c = params.c, d = params.d;
    for (unsigned level = 0; level < params.scale; ++level) {
      double r = uniform_unit(rng);
      row <<= 1;
      col <<= 1;
      if (r < a) {
        // top-left: nothing to add
      } else if (r < a + b) {
        col |= 1;
      } else if (r < a + b + c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
      if (params.noise > 0) {
        auto jitter = [&](double q) {
          double u = 1.0 + params.noise * (uniform_unit(rng) - 0.5);
          return q * u;
        };
        a = jitter(a);
        b = jitter(b);
        c = jitter(c);
        d = jitter(d);
        double s = a + b + c + d;
        a /= s;
        b /= s;
        c /= s;
        d /= s;
      }
    }
    if (row == col) continue;
    if (!seen.insert(arc_key(row, col)).second) continue;
    list.edges.push_back({row, col, 1.0f});
    if (params.undirected) {
      if (seen.insert(arc_key(col, row)).second)
        list.edges.push_back({col, row, 1.0f});
    }
  }
  return list;
}

EdgeList stochastic_block_model(const std::vector<vertex_t> &block_sizes,
                                double p_in, double p_out, std::uint64_t seed) {
  detail::ScopedGraphTiming timing("graph.stochastic_block_model");
  RIPPLES_ASSERT(p_in >= 0.0 && p_in <= 1.0);
  RIPPLES_ASSERT(p_out >= 0.0 && p_out <= 1.0);

  EdgeList list;
  std::vector<vertex_t> block_of;
  for (std::size_t b = 0; b < block_sizes.size(); ++b)
    for (vertex_t i = 0; i < block_sizes[b]; ++i)
      block_of.push_back(static_cast<vertex_t>(b));
  list.num_vertices = static_cast<vertex_t>(block_of.size());
  RIPPLES_ASSERT(list.num_vertices >= 2);

  // Per-pair Bernoulli draws: O(n^2), intended for the community-study
  // sizes (thousands of vertices).  Geometric skipping would be the
  // upgrade path for sparse large instances.
  Xoshiro256 rng(seed);
  for (vertex_t u = 0; u < list.num_vertices; ++u) {
    for (vertex_t v = 0; v < list.num_vertices; ++v) {
      if (u == v) continue;
      double p = block_of[u] == block_of[v] ? p_in : p_out;
      if (bernoulli(rng, p)) list.edges.push_back({u, v, 1.0f});
    }
  }
  return list;
}

EdgeList grid_2d(vertex_t rows, vertex_t cols) {
  RIPPLES_ASSERT(rows >= 1 && cols >= 1);
  EdgeList list;
  list.num_vertices = rows * cols;
  auto id = [cols](vertex_t r, vertex_t c) { return r * cols + c; };
  for (vertex_t r = 0; r < rows; ++r) {
    for (vertex_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        list.edges.push_back({id(r, c), id(r, c + 1), 1.0f});
        list.edges.push_back({id(r, c + 1), id(r, c), 1.0f});
      }
      if (r + 1 < rows) {
        list.edges.push_back({id(r, c), id(r + 1, c), 1.0f});
        list.edges.push_back({id(r + 1, c), id(r, c), 1.0f});
      }
    }
  }
  return list;
}

EdgeList path_graph(vertex_t num_vertices) {
  EdgeList list;
  list.num_vertices = num_vertices;
  for (vertex_t u = 0; u + 1 < num_vertices; ++u)
    list.edges.push_back({u, static_cast<vertex_t>(u + 1), 1.0f});
  return list;
}

EdgeList complete_graph(vertex_t num_vertices) {
  EdgeList list;
  list.num_vertices = num_vertices;
  for (vertex_t u = 0; u < num_vertices; ++u)
    for (vertex_t v = 0; v < num_vertices; ++v)
      if (u != v) list.edges.push_back({u, v, 1.0f});
  return list;
}

EdgeList star_graph(vertex_t num_leaves, bool bidirectional) {
  EdgeList list;
  list.num_vertices = num_leaves + 1;
  for (vertex_t leaf = 1; leaf <= num_leaves; ++leaf) {
    list.edges.push_back({0, leaf, 1.0f});
    if (bidirectional) list.edges.push_back({leaf, 0, 1.0f});
  }
  return list;
}

} // namespace ripples
