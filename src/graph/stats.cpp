#include "graph/stats.hpp"

#include <algorithm>

namespace ripples {

GraphStats compute_stats(const CsrGraph &graph) {
  GraphStats stats;
  stats.num_vertices = graph.num_vertices();
  stats.num_edges = graph.num_edges();
  if (stats.num_vertices == 0) return stats;

  std::size_t total_degree_sum = 0;
  for (vertex_t u = 0; u < graph.num_vertices(); ++u) {
    std::size_t out = graph.out_degree(u);
    std::size_t in = graph.in_degree(u);
    stats.max_out_degree = std::max(stats.max_out_degree, out);
    stats.max_in_degree = std::max(stats.max_in_degree, in);
    stats.max_total_degree = std::max(stats.max_total_degree, out + in);
    total_degree_sum += out + in;
    if (out + in == 0) ++stats.num_isolated;
  }
  stats.avg_out_degree = static_cast<double>(stats.num_edges) /
                         static_cast<double>(stats.num_vertices);
  stats.avg_total_degree = static_cast<double>(total_degree_sum) /
                           static_cast<double>(stats.num_vertices);
  return stats;
}

std::vector<std::size_t> out_degree_log_histogram(const CsrGraph &graph) {
  std::vector<std::size_t> histogram;
  for (vertex_t u = 0; u < graph.num_vertices(); ++u) {
    std::size_t degree = graph.out_degree(u);
    std::size_t bucket = 0;
    while ((std::size_t{1} << (bucket + 1)) <= degree + 1) ++bucket;
    if (bucket >= histogram.size()) histogram.resize(bucket + 1, 0);
    ++histogram[bucket];
  }
  return histogram;
}

} // namespace ripples
