/// \file registry.hpp
/// \brief The eight evaluation datasets of the paper, as SNAP surrogates.
///
/// Table 2 of the paper lists eight SNAP graphs.  Offline we cannot download
/// them, so each registry entry carries (a) the paper's published statistics
/// and measurements — used by the bench harness to print paper-vs-measured
/// comparisons — and (b) a generator recipe whose degree distribution and
/// directedness match the original.  `materialize` builds the surrogate at a
/// caller-chosen scale: scale 1.0 approximates the original vertex count;
/// the benches default to much smaller scales so the whole evaluation runs
/// on one core.  If a genuine SNAP file is present on disk, `materialize`
/// loads it instead (path override), making the harness usable unchanged on
/// a machine with the real data.
#ifndef RIPPLES_GRAPH_REGISTRY_HPP
#define RIPPLES_GRAPH_REGISTRY_HPP

#include <cstdint>
#include <span>
#include <string>

#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace ripples {

/// Reference numbers published in the paper (Table 2; -1 where the paper
/// prints the ◦ "could not measure" marker).
struct PaperReference {
  vertex_t nodes;
  edge_offset_t edges;
  double avg_degree;
  double max_degree;
  double imm_seconds;      ///< Tang et al. baseline, eps=0.5, k=50
  double immopt_seconds;   ///< the paper's IMMOPT, eps=0.5, k=50
  double imm_megabytes;    ///< Massif peak, baseline
  double immopt_megabytes; ///< Massif peak, IMMOPT
};

/// Generator recipe for the structural surrogate.
struct SurrogateRecipe {
  enum class Kind { Rmat, RmatUndirected, BarabasiAlbert };
  Kind kind = Kind::Rmat;
  /// Arcs-per-vertex target (m/n of the original edge list).
  double edge_factor = 16.0;
  /// BA attachment count (Kind::BarabasiAlbert only).
  unsigned ba_edges_per_vertex = 3;
};

struct DatasetSpec {
  std::string name;
  PaperReference paper;
  SurrogateRecipe recipe;
};

/// All eight datasets in the paper's Table 2 order.
[[nodiscard]] std::span<const DatasetSpec> dataset_registry();

/// Lookup by SNAP name ("com-Orkut", case-sensitive).  Terminates with a
/// listing of valid names if not found — registry names are compiled in, so
/// a miss is a usage error.
[[nodiscard]] const DatasetSpec &find_dataset(const std::string &name);

/// The four graphs used in the distributed-scaling figures (com-YouTube,
/// soc-Pokec, soc-LiveJournal1, com-Orkut).
[[nodiscard]] std::span<const std::string> large_dataset_names();

/// Builds the surrogate at \p scale (fraction of the original vertex count;
/// clamped below at 512 vertices).  Weights are NOT assigned; callers apply
/// a weight model from weights.hpp.  Deterministic in (name, scale, seed).
[[nodiscard]] CsrGraph materialize(const DatasetSpec &spec, double scale,
                                   std::uint64_t seed);

/// As above, but if \p snap_dir is non-empty and contains "<name>.txt", the
/// genuine SNAP edge list is loaded instead of generating a surrogate.
[[nodiscard]] CsrGraph materialize(const DatasetSpec &spec, double scale,
                                   std::uint64_t seed,
                                   const std::string &snap_dir);

} // namespace ripples

#endif // RIPPLES_GRAPH_REGISTRY_HPP
