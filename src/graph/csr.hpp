/// \file csr.hpp
/// \brief Compressed-sparse-row directed graph with both edge directions.
///
/// The IMM pipeline needs both directions of every edge: the reverse
/// probabilistic BFS of GenerateRR walks *incoming* edges from a random root
/// (Definition 2), while the forward diffusion simulators that evaluate
/// E[|I(S)|] walk *outgoing* edges.  CsrGraph therefore materializes two CSR
/// structures built from one edge list.  Each adjacency entry carries the
/// edge's activation probability so the probabilistic traversals never touch
/// a separate weight array.
#ifndef RIPPLES_GRAPH_CSR_HPP
#define RIPPLES_GRAPH_CSR_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "support/assert.hpp"

namespace ripples {

/// One adjacency entry: the neighbor and the probability attached to the
/// underlying directed edge.  8 bytes, cache-friendly for the BFS kernels.
struct Adjacency {
  vertex_t vertex;
  float weight;
};

/// Immutable weighted directed graph in CSR form (both directions).
///
/// Invariants (checked by the builder, relied upon everywhere):
///  * offsets are monotone with `offsets.front()==0`, `offsets.back()==m`;
///  * the out-CSR and in-CSR describe the same edge multiset;
///  * adjacency lists are sorted by neighbor id (enables binary search and
///    gives deterministic traversal order).
class CsrGraph {
public:
  CsrGraph() = default;

  /// Builds both CSR directions from an edge list.  Self-loops are dropped
  /// (they cannot affect influence) and duplicate arcs are kept: a multi-arc
  /// legitimately increases activation probability under IC.
  explicit CsrGraph(const EdgeList &list);

  [[nodiscard]] vertex_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] edge_offset_t num_edges() const {
    return static_cast<edge_offset_t>(out_adjacency_.size());
  }

  /// Out-neighbors of \p u with the weight of each edge (u -> w).
  [[nodiscard]] std::span<const Adjacency> out_neighbors(vertex_t u) const {
    RIPPLES_DEBUG_ASSERT(u < num_vertices_);
    return {out_adjacency_.data() + out_offsets_[u],
            static_cast<std::size_t>(out_offsets_[u + 1] - out_offsets_[u])};
  }

  /// In-neighbors of \p v with the weight of each edge (w -> v).  This is
  /// the direction GenerateRR traverses.
  [[nodiscard]] std::span<const Adjacency> in_neighbors(vertex_t v) const {
    RIPPLES_DEBUG_ASSERT(v < num_vertices_);
    return {in_adjacency_.data() + in_offsets_[v],
            static_cast<std::size_t>(in_offsets_[v + 1] - in_offsets_[v])};
  }

  [[nodiscard]] std::size_t out_degree(vertex_t u) const {
    return static_cast<std::size_t>(out_offsets_[u + 1] - out_offsets_[u]);
  }
  [[nodiscard]] std::size_t in_degree(vertex_t v) const {
    return static_cast<std::size_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  /// Applies \p fn(weight)->weight to every stored edge weight, keeping the
  /// two directions consistent.  Used by the weight assigners.
  template <typename Fn> void transform_weights(Fn &&fn) {
    for (Adjacency &adjacent : out_adjacency_) adjacent.weight = fn(adjacent.weight);
    for (Adjacency &adjacent : in_adjacency_) adjacent.weight = fn(adjacent.weight);
  }

  /// Mutable access for the weight assigners in weights.cpp.  The two arrays
  /// describe the same edges; assigners must keep them consistent (see
  /// for_each_in_entry below for the supported mutation pattern).
  [[nodiscard]] std::span<Adjacency> mutable_in_adjacency() {
    return in_adjacency_;
  }
  [[nodiscard]] std::span<Adjacency> mutable_out_adjacency() {
    return out_adjacency_;
  }
  [[nodiscard]] std::span<const edge_offset_t> in_offsets() const {
    return in_offsets_;
  }
  [[nodiscard]] std::span<const edge_offset_t> out_offsets() const {
    return out_offsets_;
  }

  /// Rebuilds the out-CSR weights from the in-CSR ones (or vice versa) after
  /// an assigner rewrote a single direction.  O(m) through the cross-index
  /// built at construction time; exact even in the presence of multi-arcs.
  void propagate_weights_in_to_out();
  void propagate_weights_out_to_in();

  /// Heap footprint of the CSR arrays in bytes.
  [[nodiscard]] std::size_t memory_footprint_bytes() const;

  /// FNV-1a digest over the out-CSR offsets, neighbors, and weight bit
  /// patterns.  Two graphs hash equal iff they have identical structure and
  /// weights, which is what checkpoint resume needs to verify: replaying RRR
  /// coordinates against a different graph would be silently wrong.
  [[nodiscard]] std::uint64_t structural_hash() const;

  /// Round-trips back to an edge list (sorted by source, then destination),
  /// using the out-direction weights.
  [[nodiscard]] EdgeList to_edge_list() const;

private:
  vertex_t num_vertices_ = 0;
  std::vector<edge_offset_t> out_offsets_{0};
  std::vector<Adjacency> out_adjacency_;
  std::vector<edge_offset_t> in_offsets_{0};
  std::vector<Adjacency> in_adjacency_;
  /// in_to_out_[i] is the out-adjacency index describing the same edge as
  /// in-adjacency entry i.
  std::vector<edge_offset_t> in_to_out_;
};

} // namespace ripples

#endif // RIPPLES_GRAPH_CSR_HPP
