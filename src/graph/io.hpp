/// \file io.hpp
/// \brief Edge-list file formats.
///
/// The text format is the SNAP convention ("# comment" lines, then
/// whitespace-separated `src dst [weight]` per line), so the genuine SNAP
/// datasets the paper uses can be dropped in unmodified.  The binary format
/// is a fast cache for generated surrogates.
#ifndef RIPPLES_GRAPH_IO_HPP
#define RIPPLES_GRAPH_IO_HPP

#include <iosfwd>
#include <string>

#include "graph/types.hpp"

namespace ripples {

/// Opt-in anomaly screens for the text loader.  Self-loops and duplicate
/// arcs are legitimate in raw SNAP data (CsrGraph drops the former and
/// treats the latter as multi-arcs), so by default they load fine; a
/// pipeline that wants to catch a corrupted or doubly-concatenated input
/// turns these on (imm_cli --strict-input) and gets a line-numbered error
/// instead.
struct EdgeListValidation {
  bool reject_self_loops = false;
  bool reject_duplicates = false;
};

/// Parses a SNAP-style text edge list.  With \p compact_ids (the default)
/// vertex ids are compacted to a dense [0, n) range in first-appearance
/// order, which SNAP's sparse id spaces require; with it disabled the raw
/// ids are kept verbatim and num_vertices becomes max_id + 1 (exact
/// round-trip for already-dense files).
///
/// Always rejected, with a line-numbered diagnostic (std::runtime_error):
/// malformed edge or weight tokens; weights that are NaN, negative, or > 1
/// (activation probabilities by contract — a poisoned weight would silently
/// skew every sampler downstream); and edge lists shorter than the count a
/// `# ripples edge list: N vertices, M edges` header declares (a truncated
/// copy of our own writer's output).  \p validation adds the opt-in screens.
[[nodiscard]] EdgeList
read_edge_list_text(std::istream &input, bool compact_ids = true,
                    const EdgeListValidation &validation = {});
[[nodiscard]] EdgeList
load_edge_list_text(const std::string &path, bool compact_ids = true,
                    const EdgeListValidation &validation = {});

/// Writes `src dst weight` lines with a size header comment.
void write_edge_list_text(std::ostream &output, const EdgeList &list);
void save_edge_list_text(const std::string &path, const EdgeList &list);

/// Binary round-trip: little-endian header {magic, version, n, m} followed
/// by m packed WeightedEdge records.  Throws std::runtime_error on a bad
/// magic/version or truncated payload.
[[nodiscard]] EdgeList load_edge_list_binary(const std::string &path);
void save_edge_list_binary(const std::string &path, const EdgeList &list);

} // namespace ripples

#endif // RIPPLES_GRAPH_IO_HPP
