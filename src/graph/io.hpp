/// \file io.hpp
/// \brief Edge-list file formats.
///
/// The text format is the SNAP convention ("# comment" lines, then
/// whitespace-separated `src dst [weight]` per line), so the genuine SNAP
/// datasets the paper uses can be dropped in unmodified.  The binary format
/// is a fast cache for generated surrogates.
#ifndef RIPPLES_GRAPH_IO_HPP
#define RIPPLES_GRAPH_IO_HPP

#include <iosfwd>
#include <string>

#include "graph/types.hpp"

namespace ripples {

/// Parses a SNAP-style text edge list.  With \p compact_ids (the default)
/// vertex ids are compacted to a dense [0, n) range in first-appearance
/// order, which SNAP's sparse id spaces require; with it disabled the raw
/// ids are kept verbatim and num_vertices becomes max_id + 1 (exact
/// round-trip for already-dense files).  Throws std::runtime_error on
/// malformed input.
[[nodiscard]] EdgeList read_edge_list_text(std::istream &input,
                                           bool compact_ids = true);
[[nodiscard]] EdgeList load_edge_list_text(const std::string &path,
                                           bool compact_ids = true);

/// Writes `src dst weight` lines with a size header comment.
void write_edge_list_text(std::ostream &output, const EdgeList &list);
void save_edge_list_text(const std::string &path, const EdgeList &list);

/// Binary round-trip: little-endian header {magic, version, n, m} followed
/// by m packed WeightedEdge records.  Throws std::runtime_error on a bad
/// magic/version or truncated payload.
[[nodiscard]] EdgeList load_edge_list_binary(const std::string &path);
void save_edge_list_binary(const std::string &path, const EdgeList &list);

} // namespace ripples

#endif // RIPPLES_GRAPH_IO_HPP
