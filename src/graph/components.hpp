/// \file components.hpp
/// \brief Connected-component analyses of the input graph.
///
/// IMM's behaviour is governed by reachability structure: under IC with
/// high edge probabilities, RRR sets approach the in-component of the root
/// within the giant SCC, and theta's lower bound tracks the largest
/// influence basin.  These analyses let users (and the dataset registry
/// tests) characterize inputs the way the SNAP dataset pages do — giant
/// WCC/SCC sizes — and support the case-study diagnostics.
#ifndef RIPPLES_GRAPH_COMPONENTS_HPP
#define RIPPLES_GRAPH_COMPONENTS_HPP

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace ripples {

struct ComponentAssignment {
  /// Component id per vertex, compacted to [0, num_components).
  std::vector<std::uint32_t> component_of;
  std::uint32_t num_components = 0;
  /// Vertices per component.
  std::vector<std::uint32_t> size_of;

  /// Size of the largest component (0 for an empty graph).
  [[nodiscard]] std::uint32_t giant_size() const {
    std::uint32_t giant = 0;
    for (std::uint32_t size : size_of) giant = std::max(giant, size);
    return giant;
  }
};

/// Weakly connected components (union-find over the undirected view).
[[nodiscard]] ComponentAssignment weakly_connected_components(const CsrGraph &graph);

/// Strongly connected components (iterative Tarjan — no recursion, safe
/// for million-vertex chains).  Component ids are in reverse topological
/// order of the condensation (Tarjan's natural output order).
[[nodiscard]] ComponentAssignment strongly_connected_components(const CsrGraph &graph);

} // namespace ripples

#endif // RIPPLES_GRAPH_COMPONENTS_HPP
