#include "graph/csr.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>

namespace ripples {

CsrGraph::CsrGraph(const EdgeList &list) : num_vertices_(list.num_vertices) {
  for (const WeightedEdge &e : list.edges) {
    RIPPLES_ASSERT_MSG(e.source < num_vertices_ && e.destination < num_vertices_,
                       "edge endpoint out of range");
  }

  // Count non-loop edges per endpoint.
  std::vector<edge_offset_t> out_count(num_vertices_ + 1, 0);
  std::vector<edge_offset_t> in_count(num_vertices_ + 1, 0);
  edge_offset_t kept = 0;
  for (const WeightedEdge &e : list.edges) {
    if (e.source == e.destination) continue; // self-loops cannot spread influence
    ++out_count[e.source + 1];
    ++in_count[e.destination + 1];
    ++kept;
  }

  out_offsets_.assign(num_vertices_ + 1, 0);
  in_offsets_.assign(num_vertices_ + 1, 0);
  std::partial_sum(out_count.begin(), out_count.end(), out_offsets_.begin());
  std::partial_sum(in_count.begin(), in_count.end(), in_offsets_.begin());

  // Fill the out-CSR first, remembering each edge's out slot so the in-CSR
  // can cross-reference it.
  out_adjacency_.resize(kept);
  std::vector<edge_offset_t> cursor(out_offsets_.begin(), out_offsets_.end() - 1);
  struct InEntry {
    vertex_t source;
    float weight;
    edge_offset_t out_index;
  };
  std::vector<InEntry> in_scratch(kept);
  std::vector<edge_offset_t> in_cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (const WeightedEdge &e : list.edges) {
    if (e.source == e.destination) continue;
    edge_offset_t slot = cursor[e.source]++;
    out_adjacency_[slot] = {e.destination, e.weight};
    in_scratch[in_cursor[e.destination]++] = {e.source, e.weight, slot};
  }

  // Sort each out-adjacency list by neighbor id.  The cross-index must track
  // the permutation, so sort index arrays per bucket.
  std::vector<edge_offset_t> out_perm(kept); // out slot -> final position
  {
    std::vector<edge_offset_t> order;
    for (vertex_t u = 0; u < num_vertices_; ++u) {
      edge_offset_t begin = out_offsets_[u], end = out_offsets_[u + 1];
      order.resize(static_cast<std::size_t>(end - begin));
      std::iota(order.begin(), order.end(), begin);
      std::sort(order.begin(), order.end(), [&](edge_offset_t a, edge_offset_t b) {
        return out_adjacency_[a].vertex < out_adjacency_[b].vertex;
      });
      // Apply the permutation out-of-place per bucket (buckets are small).
      std::vector<Adjacency> sorted(order.size());
      for (std::size_t i = 0; i < order.size(); ++i) {
        sorted[i] = out_adjacency_[order[i]];
        out_perm[order[i]] = begin + i;
      }
      std::copy(sorted.begin(), sorted.end(), out_adjacency_.begin() + static_cast<std::ptrdiff_t>(begin));
    }
  }

  // Sort each in-adjacency bucket by source id and record the cross-index.
  in_adjacency_.resize(kept);
  in_to_out_.resize(kept);
  for (vertex_t v = 0; v < num_vertices_; ++v) {
    auto begin = in_scratch.begin() + static_cast<std::ptrdiff_t>(in_offsets_[v]);
    auto end = in_scratch.begin() + static_cast<std::ptrdiff_t>(in_offsets_[v + 1]);
    std::sort(begin, end,
              [](const InEntry &a, const InEntry &b) { return a.source < b.source; });
    for (auto it = begin; it != end; ++it) {
      auto i = static_cast<std::size_t>(it - in_scratch.begin());
      in_adjacency_[i] = {it->source, it->weight};
      in_to_out_[i] = out_perm[it->out_index];
    }
  }
}

void CsrGraph::propagate_weights_in_to_out() {
  for (std::size_t i = 0; i < in_adjacency_.size(); ++i)
    out_adjacency_[in_to_out_[i]].weight = in_adjacency_[i].weight;
}

void CsrGraph::propagate_weights_out_to_in() {
  for (std::size_t i = 0; i < in_adjacency_.size(); ++i)
    in_adjacency_[i].weight = out_adjacency_[in_to_out_[i]].weight;
}

std::size_t CsrGraph::memory_footprint_bytes() const {
  return out_offsets_.capacity() * sizeof(edge_offset_t) +
         in_offsets_.capacity() * sizeof(edge_offset_t) +
         out_adjacency_.capacity() * sizeof(Adjacency) +
         in_adjacency_.capacity() * sizeof(Adjacency) +
         in_to_out_.capacity() * sizeof(edge_offset_t);
}

std::uint64_t CsrGraph::structural_hash() const {
  // FNV-1a; weights hashed by bit pattern so -0.0 vs 0.0 or NaN payloads
  // cannot collide two graphs the samplers would traverse differently.
  std::uint64_t h = 0xCBF29CE484222325ull;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFFu;
      h *= 0x100000001B3ull;
    }
  };
  mix(num_vertices_);
  for (edge_offset_t offset : out_offsets_)
    mix(offset);
  for (const Adjacency &adjacent : out_adjacency_) {
    std::uint32_t weight_bits;
    std::memcpy(&weight_bits, &adjacent.weight, sizeof weight_bits);
    mix((static_cast<std::uint64_t>(adjacent.vertex) << 32) | weight_bits);
  }
  return h;
}

EdgeList CsrGraph::to_edge_list() const {
  EdgeList list;
  list.num_vertices = num_vertices_;
  list.edges.reserve(out_adjacency_.size());
  for (vertex_t u = 0; u < num_vertices_; ++u)
    for (const Adjacency &adjacent : out_neighbors(u))
      list.edges.push_back({u, adjacent.vertex, adjacent.weight});
  return list;
}

} // namespace ripples
