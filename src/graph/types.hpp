/// \file types.hpp
/// \brief Fundamental graph value types shared by the whole library.
#ifndef RIPPLES_GRAPH_TYPES_HPP
#define RIPPLES_GRAPH_TYPES_HPP

#include <cstdint>
#include <vector>

namespace ripples {

/// Vertex identifier.  32 bits cover the graph sizes the paper evaluates
/// (largest: com-Orkut, 3.07M vertices) with headroom to 4.29B.
using vertex_t = std::uint32_t;

/// Edge-array index; 64-bit because edge counts exceed 2^32 at the upper end
/// of the paper's ambitions (billion-edge graphs).
using edge_offset_t = std::uint64_t;

/// A weighted directed edge.  `weight` is the activation probability p(e)
/// for IC, or the (pre-normalization) influence weight b(e) for LT.
struct WeightedEdge {
  vertex_t source;
  vertex_t destination;
  float weight = 1.0f;

  friend bool operator==(const WeightedEdge &, const WeightedEdge &) = default;
};

/// An edge list plus the vertex-count it is defined over.  The intermediate
/// representation between generators / file loaders and the CSR builder.
struct EdgeList {
  vertex_t num_vertices = 0;
  std::vector<WeightedEdge> edges;
};

} // namespace ripples

#endif // RIPPLES_GRAPH_TYPES_HPP
