#include "graph/components.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"

namespace ripples {

namespace {

/// Union-find with path halving and union by size.
class DisjointSets {
public:
  explicit DisjointSets(std::uint32_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

} // namespace

ComponentAssignment weakly_connected_components(const CsrGraph &graph) {
  const vertex_t n = graph.num_vertices();
  DisjointSets sets(n);
  for (vertex_t u = 0; u < n; ++u)
    for (const Adjacency &out : graph.out_neighbors(u)) sets.unite(u, out.vertex);

  ComponentAssignment assignment;
  assignment.component_of.resize(n);
  std::vector<std::uint32_t> compact(n, 0xffffffff);
  for (vertex_t v = 0; v < n; ++v) {
    std::uint32_t root = sets.find(v);
    if (compact[root] == 0xffffffff) {
      compact[root] = assignment.num_components++;
      assignment.size_of.push_back(0);
    }
    assignment.component_of[v] = compact[root];
    ++assignment.size_of[compact[root]];
  }
  return assignment;
}

ComponentAssignment strongly_connected_components(const CsrGraph &graph) {
  const vertex_t n = graph.num_vertices();
  constexpr std::uint32_t kUnvisited = 0xffffffff;

  ComponentAssignment assignment;
  assignment.component_of.assign(n, kUnvisited);

  std::vector<std::uint32_t> index_of(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<vertex_t> stack; // Tarjan's component stack

  // Explicit DFS frame: the vertex and how many out-edges are consumed.
  struct Frame {
    vertex_t vertex;
    std::uint32_t next_edge;
  };
  std::vector<Frame> dfs;
  std::uint32_t next_index = 0;

  for (vertex_t start = 0; start < n; ++start) {
    if (index_of[start] != kUnvisited) continue;
    dfs.push_back({start, 0});
    while (!dfs.empty()) {
      Frame &frame = dfs.back();
      vertex_t v = frame.vertex;
      if (frame.next_edge == 0) {
        index_of[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      auto out = graph.out_neighbors(v);
      bool descended = false;
      while (frame.next_edge < out.size()) {
        vertex_t w = out[frame.next_edge++].vertex;
        if (index_of[w] == kUnvisited) {
          dfs.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index_of[w]);
      }
      if (descended) continue;

      // v is finished: pop a component if v is a root, then propagate the
      // lowlink to the parent.
      if (lowlink[v] == index_of[v]) {
        std::uint32_t component = assignment.num_components++;
        assignment.size_of.push_back(0);
        for (;;) {
          vertex_t w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          assignment.component_of[w] = component;
          ++assignment.size_of[component];
          if (w == v) break;
        }
      }
      dfs.pop_back();
      if (!dfs.empty()) {
        vertex_t parent = dfs.back().vertex;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  RIPPLES_DEBUG_ASSERT(stack.empty());
  return assignment;
}

} // namespace ripples
