#include "graph/registry.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "rng/splitmix.hpp"
#include "support/log.hpp"

namespace ripples {

namespace {

using Kind = SurrogateRecipe::Kind;

// Table 2 of the paper, verbatim.  edge counts are arc counts for directed
// soc-/cit- graphs and undirected-edge counts for com- graphs, exactly as
// SNAP distributes them.
const std::array<DatasetSpec, 8> kRegistry = {{
    {"cit-HepTh",
     {27770, 352807, 12.70, 2468, 8.00, 2.84, 357.23, 190.80},
     {Kind::Rmat, 12.70, 0}},
    {"soc-Epinions1",
     {75879, 508837, 13.41, 3079, 41.59, 14.62, 2198.25, 1170.05},
     {Kind::Rmat, 6.71, 0}},
    {"com-Amazon",
     {334863, 925872, 5.53, 549, 521.04, 188.48, 19222.59, 10927.92},
     {Kind::BarabasiAlbert, 2.77, 3}},
    {"com-DBLP",
     {317080, 1049866, 6.62, 343, 526.82, 170.32, 13260.18, 5547.77},
     {Kind::BarabasiAlbert, 3.31, 3}},
    {"com-YouTube",
     {1134890, 2987624, 2.63, 28754, 1592.08, 511.77, 49710.07, 25785.04},
     {Kind::BarabasiAlbert, 2.63, 2}},
    {"soc-Pokec",
     {1632803, 30622564, 37.51, 20518, 5552.37, 2350.27, 63210.72, 51643.09},
     {Kind::Rmat, 18.75, 0}},
    {"soc-LiveJournal1",
     {4847571, 68993773, 28.47, 22889, 16434.81, 3954.59, -1, 64501.89},
     {Kind::Rmat, 14.23, 0}},
    {"com-Orkut",
     {3072441, 117185083, 76.28, 33313, 28024.56, 9027.50, -1, -1},
     {Kind::RmatUndirected, 38.14, 0}},
}};

const std::array<std::string, 4> kLargeNames = {
    "com-YouTube", "soc-Pokec", "soc-LiveJournal1", "com-Orkut"};

} // namespace

std::span<const DatasetSpec> dataset_registry() { return kRegistry; }

const DatasetSpec &find_dataset(const std::string &name) {
  for (const DatasetSpec &spec : kRegistry)
    if (spec.name == name) return spec;
  std::fprintf(stderr, "ripples: unknown dataset '%s'. Known datasets:\n",
               name.c_str());
  for (const DatasetSpec &spec : kRegistry)
    std::fprintf(stderr, "  %s\n", spec.name.c_str());
  std::exit(2);
}

std::span<const std::string> large_dataset_names() { return kLargeNames; }

CsrGraph materialize(const DatasetSpec &spec, double scale,
                     std::uint64_t seed) {
  // Derive a dataset-specific seed so two datasets built from the same user
  // seed do not share random structure.
  std::uint64_t mixed = seed;
  for (char ch : spec.name) mixed = splitmix64_mix(mixed ^ static_cast<std::uint64_t>(ch));

  const double target_n =
      std::max(512.0, static_cast<double>(spec.paper.nodes) * scale);

  EdgeList list;
  switch (spec.recipe.kind) {
  case Kind::Rmat:
  case Kind::RmatUndirected: {
    RmatParams params;
    params.scale = static_cast<unsigned>(std::lround(std::log2(target_n)));
    params.scale = std::clamp(params.scale, 9u, 26u);
    params.edge_factor = spec.recipe.edge_factor;
    params.undirected = spec.recipe.kind == Kind::RmatUndirected;
    list = rmat(params, mixed);
    break;
  }
  case Kind::BarabasiAlbert: {
    auto n = static_cast<vertex_t>(target_n);
    list = barabasi_albert(n, spec.recipe.ba_edges_per_vertex, mixed);
    break;
  }
  }
  RIPPLES_LOG_DEBUG("materialized %s at scale %.4f: %u vertices, %zu arcs",
                    spec.name.c_str(), scale, list.num_vertices,
                    list.edges.size());
  return CsrGraph(list);
}

CsrGraph materialize(const DatasetSpec &spec, double scale, std::uint64_t seed,
                     const std::string &snap_dir) {
  if (!snap_dir.empty()) {
    const std::string path = snap_dir + "/" + spec.name + ".txt";
    if (std::ifstream probe(path); probe) {
      RIPPLES_LOG_INFO("loading genuine SNAP dataset from %s", path.c_str());
      return CsrGraph(load_edge_list_text(path));
    }
    RIPPLES_LOG_WARN("%s not found; falling back to surrogate generation",
                     path.c_str());
  }
  return materialize(spec, scale, seed);
}

} // namespace ripples
