/// \file weights.hpp
/// \brief Edge activation-probability models.
///
/// The paper generates IC edge probabilities "uniformly at random in the
/// range [0; 1]"; for LT "the weights are readjusted such that the sum of
/// the probabilities of traversing one of the neighboring edges and of not
/// traversing any of them, is one" (Section 4, Experimental Setup).  The
/// two classic literature alternatives — constant probability (Tang et al.
/// use 0.1) and weighted cascade (p = 1/indegree) — are provided because the
/// paper explicitly notes that its uniform weights explain the runtime gap
/// versus Tang et al.'s constant 0.1, which the benches can demonstrate.
#ifndef RIPPLES_GRAPH_WEIGHTS_HPP
#define RIPPLES_GRAPH_WEIGHTS_HPP

#include <cstdint>

#include "graph/csr.hpp"

namespace ripples {

/// Assigns each edge an independent uniform probability in [lo, hi).
void assign_uniform_weights(CsrGraph &graph, std::uint64_t seed,
                            float lo = 0.0f, float hi = 1.0f);

/// Assigns every edge the constant probability \p p.
void assign_constant_weights(CsrGraph &graph, float p);

/// Weighted-cascade model: every edge (u -> v) gets p = 1/indegree(v), so
/// each vertex's incoming probability mass sums to exactly 1.
void assign_weighted_cascade(CsrGraph &graph);

/// Trivalency model: each edge draws uniformly from {0.1, 0.01, 0.001}.
void assign_trivalency_weights(CsrGraph &graph, std::uint64_t seed);

/// LT readjustment: scales each vertex's incoming weights by
/// 1 / max(1, sum of incoming weights) so that the probability of selecting
/// one incoming edge plus the probability of selecting none equals one.
/// Idempotent once the incoming sums are <= 1.
void renormalize_linear_threshold(CsrGraph &graph);

} // namespace ripples

#endif // RIPPLES_GRAPH_WEIGHTS_HPP
