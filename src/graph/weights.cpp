#include "graph/weights.hpp"

#include "graph/timing.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro.hpp"

namespace ripples {

void assign_uniform_weights(CsrGraph &graph, std::uint64_t seed, float lo,
                            float hi) {
  detail::ScopedGraphTiming timing("graph.assign_uniform_weights");
  Xoshiro256 rng(seed);
  // Draw per in-CSR entry (deterministic order), then mirror to the out-CSR.
  for (Adjacency &adjacent : graph.mutable_in_adjacency())
    adjacent.weight = static_cast<float>(uniform_real(rng, lo, hi));
  graph.propagate_weights_in_to_out();
}

void assign_constant_weights(CsrGraph &graph, float p) {
  detail::ScopedGraphTiming timing("graph.assign_constant_weights");
  graph.transform_weights([p](float) { return p; });
}

void assign_weighted_cascade(CsrGraph &graph) {
  detail::ScopedGraphTiming timing("graph.assign_weighted_cascade");
  auto in_adjacency = graph.mutable_in_adjacency();
  for (vertex_t v = 0; v < graph.num_vertices(); ++v) {
    auto begin = graph.in_offsets()[v];
    auto end = graph.in_offsets()[v + 1];
    if (begin == end) continue;
    float p = 1.0f / static_cast<float>(end - begin);
    for (auto i = begin; i < end; ++i) in_adjacency[i].weight = p;
  }
  graph.propagate_weights_in_to_out();
}

void assign_trivalency_weights(CsrGraph &graph, std::uint64_t seed) {
  detail::ScopedGraphTiming timing("graph.assign_trivalency_weights");
  static constexpr float kLevels[3] = {0.1f, 0.01f, 0.001f};
  Xoshiro256 rng(seed);
  for (Adjacency &adjacent : graph.mutable_in_adjacency())
    adjacent.weight = kLevels[uniform_index(rng, 3)];
  graph.propagate_weights_in_to_out();
}

void renormalize_linear_threshold(CsrGraph &graph) {
  detail::ScopedGraphTiming timing("graph.renormalize_linear_threshold");
  auto in_adjacency = graph.mutable_in_adjacency();
  for (vertex_t v = 0; v < graph.num_vertices(); ++v) {
    auto begin = graph.in_offsets()[v];
    auto end = graph.in_offsets()[v + 1];
    double sum = 0;
    for (auto i = begin; i < end; ++i) sum += in_adjacency[i].weight;
    if (sum <= 1.0) continue;
    auto scale = static_cast<float>(1.0 / sum);
    for (auto i = begin; i < end; ++i) in_adjacency[i].weight *= scale;
  }
  graph.propagate_weights_in_to_out();
}

} // namespace ripples
