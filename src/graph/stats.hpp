/// \file stats.hpp
/// \brief Degree statistics (the columns of Table 2's dataset summary).
#ifndef RIPPLES_GRAPH_STATS_HPP
#define RIPPLES_GRAPH_STATS_HPP

#include <cstddef>
#include <vector>

#include "graph/csr.hpp"

namespace ripples {

struct GraphStats {
  vertex_t num_vertices = 0;
  edge_offset_t num_edges = 0; ///< arc count
  double avg_out_degree = 0;   ///< arcs / vertices
  std::size_t max_out_degree = 0;
  std::size_t max_in_degree = 0;
  /// Total degree (in+out) statistics, matching SNAP's reporting convention
  /// for directed graphs.
  double avg_total_degree = 0;
  std::size_t max_total_degree = 0;
  vertex_t num_isolated = 0; ///< vertices with no arcs in either direction
};

[[nodiscard]] GraphStats compute_stats(const CsrGraph &graph);

/// Histogram of out-degrees in logarithmic buckets [2^i, 2^{i+1}); useful to
/// eyeball whether a surrogate matches the heavy tail of its SNAP original.
[[nodiscard]] std::vector<std::size_t>
out_degree_log_histogram(const CsrGraph &graph);

} // namespace ripples

#endif // RIPPLES_GRAPH_STATS_HPP
