#include "graph/io.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace ripples {

namespace {

constexpr std::uint32_t kBinaryMagic = 0x52504C47; // "RPLG"
constexpr std::uint32_t kBinaryVersion = 1;

[[noreturn]] void fail(const std::string &what) {
  throw std::runtime_error("ripples graph io: " + what);
}

} // namespace

EdgeList read_edge_list_text(std::istream &input, bool compact_ids,
                             const EdgeListValidation &validation) {
  EdgeList list;
  std::unordered_map<std::uint64_t, vertex_t> compact;
  auto intern = [&](std::uint64_t raw) -> vertex_t {
    if (!compact_ids) {
      auto id = static_cast<vertex_t>(raw);
      list.num_vertices = std::max(list.num_vertices,
                                   static_cast<vertex_t>(id + 1));
      return id;
    }
    auto [it, inserted] = compact.try_emplace(raw, list.num_vertices);
    if (inserted) ++list.num_vertices;
    return it->second;
  };

  // Our own writer emits "# ripples edge list: N vertices, M edges"; when
  // a file carries that header, the declared edge count catches truncated
  // copies (a partial download or filled disk) that would otherwise load as
  // a silently smaller — and wrong — graph.
  std::uint64_t declared_edges = 0;
  bool have_declared = false;
  std::unordered_set<std::uint64_t> seen_arcs;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(input, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') {
      unsigned long long n = 0, m = 0;
      if (std::sscanf(line.c_str(),
                      "# ripples edge list: %llu vertices, %llu edges", &n,
                      &m) == 2) {
        declared_edges = m;
        have_declared = true;
      }
      continue;
    }
    std::istringstream fields(line);
    std::uint64_t raw_src = 0, raw_dst = 0;
    if (!(fields >> raw_src >> raw_dst))
      fail("malformed edge at line " + std::to_string(line_no));
    float weight = 1.0f;
    fields >> weight; // optional third column
    // A missing third column leaves weight at 1.0 (the stream fails at
    // EOF before extracting); a *malformed* token like "abc" also fails
    // but mid-line — reject it rather than silently reading garbage.
    if (fields.fail() && !fields.eof())
      fail("malformed weight at line " + std::to_string(line_no));
    // Weights are activation probabilities: [0, 1] by contract.  The
    // !(>= 0) form also catches NaN, which compares false to everything.
    if (!(weight >= 0.0f) || weight > 1.0f)
      fail("weight " + std::to_string(weight) + " out of [0, 1] at line " +
           std::to_string(line_no));
    if (validation.reject_self_loops && raw_src == raw_dst)
      fail("self-loop " + std::to_string(raw_src) + " at line " +
           std::to_string(line_no));
    vertex_t src = intern(raw_src);
    vertex_t dst = intern(raw_dst);
    if (validation.reject_duplicates) {
      const std::uint64_t arc =
          (static_cast<std::uint64_t>(src) << 32) | dst;
      if (!seen_arcs.insert(arc).second)
        fail("duplicate edge " + std::to_string(raw_src) + " -> " +
             std::to_string(raw_dst) + " at line " + std::to_string(line_no));
    }
    list.edges.push_back({src, dst, weight});
  }
  if (have_declared && list.edges.size() != declared_edges)
    fail("header declares " + std::to_string(declared_edges) +
         " edges but the file holds " + std::to_string(list.edges.size()) +
         " (truncated after line " + std::to_string(line_no) + "?)");
  return list;
}

EdgeList load_edge_list_text(const std::string &path, bool compact_ids,
                             const EdgeListValidation &validation) {
  std::ifstream input(path);
  if (!input) fail("cannot open '" + path + "'");
  return read_edge_list_text(input, compact_ids, validation);
}

void write_edge_list_text(std::ostream &output, const EdgeList &list) {
  output << "# ripples edge list: " << list.num_vertices << " vertices, "
         << list.edges.size() << " edges\n";
  for (const WeightedEdge &e : list.edges)
    output << e.source << '\t' << e.destination << '\t' << e.weight << '\n';
}

void save_edge_list_text(const std::string &path, const EdgeList &list) {
  std::ofstream output(path);
  if (!output) fail("cannot open '" + path + "' for writing");
  write_edge_list_text(output, list);
}

EdgeList load_edge_list_binary(const std::string &path) {
  std::ifstream input(path, std::ios::binary);
  if (!input) fail("cannot open '" + path + "'");

  std::array<std::uint32_t, 2> magic_version{};
  std::uint64_t n = 0, m = 0;
  input.read(reinterpret_cast<char *>(magic_version.data()),
             sizeof(magic_version));
  input.read(reinterpret_cast<char *>(&n), sizeof(n));
  input.read(reinterpret_cast<char *>(&m), sizeof(m));
  if (!input || magic_version[0] != kBinaryMagic)
    fail("'" + path + "' is not a ripples binary edge list");
  if (magic_version[1] != kBinaryVersion)
    fail("unsupported binary version in '" + path + "'");

  // The edge count drives a preallocation, so validate it against the
  // bytes actually present before trusting it: a corrupt (or hostile)
  // header declaring 10^15 edges must produce this diagnostic, not a
  // multi-terabyte resize that the allocator kills the process over.
  const auto header_bytes = static_cast<std::uint64_t>(input.tellg());
  input.seekg(0, std::ios::end);
  const auto file_bytes = static_cast<std::uint64_t>(input.tellg());
  input.seekg(static_cast<std::streamoff>(header_bytes), std::ios::beg);
  const std::uint64_t payload_capacity =
      (file_bytes - header_bytes) / sizeof(WeightedEdge);
  if (m > payload_capacity)
    fail("header of '" + path + "' declares " + std::to_string(m) +
         " edges but the file can hold at most " +
         std::to_string(payload_capacity) +
         " (corrupt header or truncated payload)");

  EdgeList list;
  list.num_vertices = static_cast<vertex_t>(n);
  list.edges.resize(m);
  input.read(reinterpret_cast<char *>(list.edges.data()),
             static_cast<std::streamsize>(m * sizeof(WeightedEdge)));
  if (!input) fail("truncated payload in '" + path + "'");
  return list;
}

void save_edge_list_binary(const std::string &path, const EdgeList &list) {
  std::ofstream output(path, std::ios::binary);
  if (!output) fail("cannot open '" + path + "' for writing");
  const std::array<std::uint32_t, 2> magic_version{kBinaryMagic, kBinaryVersion};
  const std::uint64_t n = list.num_vertices;
  const std::uint64_t m = list.edges.size();
  output.write(reinterpret_cast<const char *>(magic_version.data()),
               sizeof(magic_version));
  output.write(reinterpret_cast<const char *>(&n), sizeof(n));
  output.write(reinterpret_cast<const char *>(&m), sizeof(m));
  output.write(reinterpret_cast<const char *>(list.edges.data()),
               static_cast<std::streamsize>(m * sizeof(WeightedEdge)));
  if (!output) fail("write failure on '" + path + "'");
}

} // namespace ripples
