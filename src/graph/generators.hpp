/// \file generators.hpp
/// \brief Synthetic graph generators standing in for the SNAP datasets.
///
/// The paper evaluates on eight SNAP graphs that are not redistributable
/// here.  These generators produce graphs whose structural drivers of IMM
/// behaviour — size, density, degree skew, directedness — can be matched to
/// each dataset (see registry.hpp).  All generators are deterministic given
/// a seed.
#ifndef RIPPLES_GRAPH_GENERATORS_HPP
#define RIPPLES_GRAPH_GENERATORS_HPP

#include <cstdint>

#include "graph/types.hpp"

namespace ripples {

/// Directed Erdős–Rényi G(n, m): m arcs sampled uniformly (self-loops
/// excluded, duplicates retried so exactly m distinct arcs result).
[[nodiscard]] EdgeList erdos_renyi(vertex_t num_vertices,
                                   edge_offset_t num_edges,
                                   std::uint64_t seed);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// \p edges_per_vertex existing vertices with probability proportional to
/// degree.  The undirected result is emitted as arcs in both directions
/// (matching the com-* SNAP graphs, which are undirected).
[[nodiscard]] EdgeList barabasi_albert(vertex_t num_vertices,
                                       unsigned edges_per_vertex,
                                       std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with \p neighbors_per_side
/// neighbors on each side, each edge rewired with probability \p beta;
/// emitted as arcs in both directions.
[[nodiscard]] EdgeList watts_strogatz(vertex_t num_vertices,
                                      unsigned neighbors_per_side, double beta,
                                      std::uint64_t seed);

/// R-MAT / stochastic Kronecker generator (Chakrabarti et al.).  Produces
/// 2^scale vertices and edge_factor * 2^scale directed arcs with quadrant
/// probabilities (a, b, c, d); a+b+c+d must sum to 1.  The default
/// parameters (0.57, 0.19, 0.19, 0.05) reproduce the heavy-tailed degree
/// distributions of social networks.  Duplicates are removed; `noise` adds
/// the standard per-level probability smoothing that avoids grid artifacts.
struct RmatParams {
  unsigned scale = 14;
  double edge_factor = 16.0;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  double d = 0.05;
  double noise = 0.1;
  bool undirected = false; ///< emit each edge in both directions
};
[[nodiscard]] EdgeList rmat(const RmatParams &params, std::uint64_t seed);

/// Stochastic block model: \p block_sizes communities; an arc u -> v is
/// present independently with probability p_in when u and v share a block
/// and p_out otherwise.  The planted-community input for the
/// community-heuristic comparisons.
[[nodiscard]] EdgeList
stochastic_block_model(const std::vector<vertex_t> &block_sizes, double p_in,
                       double p_out, std::uint64_t seed);

/// Two-dimensional grid with directed arcs both ways between lattice
/// neighbors — a low-skew, high-diameter stress case for the BFS kernels.
[[nodiscard]] EdgeList grid_2d(vertex_t rows, vertex_t cols);

/// A directed path 0 -> 1 -> ... -> n-1; closed-form influence values make
/// it the main correctness oracle in the tests.
[[nodiscard]] EdgeList path_graph(vertex_t num_vertices);

/// Complete directed graph on n vertices (tiny n only).
[[nodiscard]] EdgeList complete_graph(vertex_t num_vertices);

/// Star: arcs hub -> leaf for every leaf (and optionally back).
[[nodiscard]] EdgeList star_graph(vertex_t num_leaves, bool bidirectional);

} // namespace ripples

#endif // RIPPLES_GRAPH_GENERATORS_HPP
