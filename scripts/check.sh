#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes over the concurrency and memory
# hot-spots (the mpsim runtime, Algorithm 4 selection, RRR storage) and a
# fault-injection soak over the recovery machinery.
#
#   scripts/check.sh             # full check
#   scripts/check.sh --no-tsan   # skip the ThreadSanitizer stage
#   scripts/check.sh --no-asan   # skip the AddressSanitizer stage
#   scripts/check.sh --no-ubsan  # skip the UndefinedBehaviorSanitizer stage
#   scripts/check.sh --no-soak   # skip the fault-injection soak stage
#   scripts/check.sh --no-sparse # skip the sparse selection-exchange leg
#
# The sparse leg reruns the selection suites (`ctest -L selection`) plus the
# IMM driver tier-1 subset with RIPPLES_SELECTION_EXCHANGE=sparse, so the
# env-selected sparse protocol sees the same coverage the dense default
# gets; selection_exchange_test also rides in the TSan stage because the
# sparse exchange adds new cross-rank collectives worth race-checking.
#
# The TSan stage builds with -DRIPPLES_SANITIZE=thread (see the top-level
# CMakeLists.txt) and runs mpsim_test, fault_test, and select_test.  OpenMP
# barrier synchronization is invisible to TSan because libgomp is not
# instrumented; scripts/tsan-suppressions.txt silences those known false
# positives while keeping the std::thread-based mpsim runtime fully checked.
#
# The ASan stage builds with -DRIPPLES_SANITIZE=address and runs imm_test
# and rrr_test — the drivers with the largest allocation churn (RRR
# collections, flat storage, hypergraph index) and therefore the best
# leak/overflow coverage per test second.
#
# The UBSan stage builds with -DRIPPLES_SANITIZE=undefined
# (-fno-sanitize-recover=all, so any UB report fails the run) and runs
# mpsim_test and fault_test: the failure paths unwind mid-collective, which
# is exactly where lifetime and arithmetic UB would hide.
#
# The soak stage reruns the `faults` ctest label repeatedly
# (RIPPLES_SOAK_ITERATIONS, default 5): the recovery protocol's historical
# bugs (stale-waiter barrier underflow) were scheduling races that a single
# pass can miss.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
soak_iterations=${RIPPLES_SOAK_ITERATIONS:-5}
run_tsan=1
run_asan=1
run_ubsan=1
run_soak=1
run_sparse=1
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    --no-asan) run_asan=0 ;;
    --no-ubsan) run_ubsan=0 ;;
    --no-soak) run_soak=0 ;;
    --no-sparse) run_sparse=0 ;;
    *) echo "unknown option: $arg (--no-tsan | --no-asan | --no-ubsan | --no-soak | --no-sparse)" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "$run_sparse" == 1 ]]; then
  echo "== sparse: ctest -L selection + IMM drivers under RIPPLES_SELECTION_EXCHANGE=sparse =="
  RIPPLES_SELECTION_EXCHANGE=sparse \
    ctest --test-dir build -L selection --output-on-failure -j "$jobs"
  RIPPLES_SELECTION_EXCHANGE=sparse ./build/tests/imm_test
  RIPPLES_SELECTION_EXCHANGE=sparse ./build/tests/driver_matrix_test
  RIPPLES_SELECTION_EXCHANGE=sparse ./build/tests/fault_test
fi

if [[ "$run_soak" == 1 ]]; then
  echo "== faults: soak (${soak_iterations}x ctest -L faults) =="
  for ((i = 1; i <= soak_iterations; ++i)); do
    ctest --test-dir build -L faults --output-on-failure -j "$jobs" \
      > /dev/null || { echo "fault soak failed on iteration $i" >&2; exit 1; }
  done
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "== tsan: build mpsim_test + fault_test + select_test + selection_exchange_test =="
  cmake -B build-tsan -S . -DRIPPLES_SANITIZE=thread \
    -DRIPPLES_ENABLE_BENCHMARKS=OFF -DRIPPLES_ENABLE_EXAMPLES=OFF >/dev/null
  cmake --build build-tsan --target \
    mpsim_test fault_test select_test selection_exchange_test -j "$jobs"

  echo "== tsan: run =="
  export TSAN_OPTIONS="suppressions=$PWD/scripts/tsan-suppressions.txt"
  ./build-tsan/tests/mpsim_test
  ./build-tsan/tests/fault_test
  ./build-tsan/tests/select_test
  ./build-tsan/tests/selection_exchange_test
fi

if [[ "$run_asan" == 1 ]]; then
  echo "== asan: build imm_test + rrr_test =="
  cmake -B build-asan -S . -DRIPPLES_SANITIZE=address \
    -DRIPPLES_ENABLE_BENCHMARKS=OFF -DRIPPLES_ENABLE_EXAMPLES=OFF >/dev/null
  cmake --build build-asan --target imm_test rrr_test -j "$jobs"

  echo "== asan: run =="
  ./build-asan/tests/imm_test
  ./build-asan/tests/rrr_test
fi

if [[ "$run_ubsan" == 1 ]]; then
  echo "== ubsan: build mpsim_test + fault_test =="
  cmake -B build-ubsan -S . -DRIPPLES_SANITIZE=undefined \
    -DRIPPLES_ENABLE_BENCHMARKS=OFF -DRIPPLES_ENABLE_EXAMPLES=OFF >/dev/null
  cmake --build build-ubsan --target mpsim_test fault_test -j "$jobs"

  echo "== ubsan: run =="
  ./build-ubsan/tests/mpsim_test
  ./build-ubsan/tests/fault_test
fi

echo "== all checks passed =="
