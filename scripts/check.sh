#!/usr/bin/env bash
# Tier-1 verification plus a ThreadSanitizer pass over the concurrency
# hot-spots (the mpsim runtime and Algorithm 4 selection).
#
#   scripts/check.sh            # full check
#   scripts/check.sh --no-tsan  # tier-1 build + tests only
#
# The TSan stage builds with -DRIPPLES_SANITIZE=thread (see the top-level
# CMakeLists.txt; 'address' is also available) and runs mpsim_test and
# select_test.  OpenMP barrier synchronization is invisible to TSan because
# libgomp is not instrumented; scripts/tsan-suppressions.txt silences those
# known false positives while keeping the std::thread-based mpsim runtime
# fully checked.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
run_tsan=1
[[ "${1:-}" == "--no-tsan" ]] && run_tsan=0

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "$run_tsan" == 1 ]]; then
  echo "== tsan: build mpsim_test + select_test =="
  cmake -B build-tsan -S . -DRIPPLES_SANITIZE=thread \
    -DRIPPLES_ENABLE_BENCHMARKS=OFF -DRIPPLES_ENABLE_EXAMPLES=OFF >/dev/null
  cmake --build build-tsan --target mpsim_test select_test -j "$jobs"

  echo "== tsan: run =="
  export TSAN_OPTIONS="suppressions=$PWD/scripts/tsan-suppressions.txt"
  ./build-tsan/tests/mpsim_test
  ./build-tsan/tests/select_test
fi

echo "== all checks passed =="
