#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes over the concurrency and memory
# hot-spots (the mpsim runtime, Algorithm 4 selection, RRR storage) and a
# fault-injection soak over the recovery machinery.
#
#   scripts/check.sh             # full check
#   scripts/check.sh --no-tsan   # skip the ThreadSanitizer stage
#   scripts/check.sh --no-asan   # skip the AddressSanitizer stage
#   scripts/check.sh --no-ubsan  # skip the UndefinedBehaviorSanitizer stage
#   scripts/check.sh --no-soak   # skip the fault-injection soak stage
#   scripts/check.sh --no-sparse # skip the sparse selection-exchange leg
#   scripts/check.sh --no-checkpoint # skip the kill-resume soak leg
#   scripts/check.sh --no-fused  # skip the fused sampling-engine leg
#   scripts/check.sh --no-observability # skip the trace/analyze leg
#   scripts/check.sh --no-membudget # skip the memory-budget leg
#   scripts/check.sh --no-stealing # skip the work-stealing leg
#   scripts/check.sh --no-integrity # skip the data-integrity leg
#
# The sparse leg reruns the selection suites (`ctest -L selection`) plus the
# IMM driver tier-1 subset with RIPPLES_SELECTION_EXCHANGE=sparse, so the
# env-selected sparse protocol sees the same coverage the dense default
# gets; selection_exchange_test also rides in the TSan stage because the
# sparse exchange adds new cross-rank collectives worth race-checking.
#
# The fused leg reruns the sampling, driver-matrix, checkpoint, and fault
# suites with RIPPLES_SAMPLER=fused, so the env-selected fused engine sees
# the same coverage the scalar default gets; every byte-identity assertion
# in those suites then compares fused output against the same expectations.
#
# The observability leg runs a 4-rank fused+sparse imm_cli with --trace
# --profile-mem --json-report and pushes the artifacts through the full
# analysis pipeline: validate_trace.py with flow-pairing and counter-track
# enforcement, then analyze_trace.py (critical-path decomposition must sum
# within tolerance of each round's wall time).  This is the one place the
# whole observatory — flow events, round ledger, resource sampler, and
# both scripts — is exercised end to end against a real multi-rank run.
#
# The memory-budget leg (DESIGN.md §12) runs `ctest -L memory`, then drives
# imm_cli through the degradation ladder end to end: a forced-compression
# fig6-style run must report >= 3x lower RRR peak with seeds byte-identical
# to the unlimited reference; a tight budget must switch to compression
# (mem.budget.compress_switches >= 1) and still finish complete with the
# reference seeds; and a below-floor budget soak — the whole ladder under an
# RLIMIT_AS cap — must end in a degraded-but-valid report (shared-memory)
# or a diagnosed MemoryBudgetExceeded (dist), never a raw bad_alloc.
#
# The stealing leg (DESIGN.md §13) runs `ctest -L stealing`, then drives the
# fig7 pathology end to end: a 4-rank fused+sparse run with --steal-skew
# homes every draw on rank 0, so the per-round compute imbalance factor is
# pathological (hundreds).  Three baseline and three steal-on runs are
# traced; the steal-on traces must pass analyze_trace.py --max-imbalance
# (nonzero exit on violation), the min-of-3 worst-round factors must show a
# >= 3x reduction, and compare_reports.py --check-seeds --ignore-placement
# must find every steal-on run byte-identical in seeds/theta/|R|/coverage
# to its no-steal baseline — stealing moves work, never results.
#
# The integrity leg (DESIGN.md §14) runs `ctest -L integrity`, then drives
# the corruption machinery end to end on a 4-rank fused+sparse+steal run:
# a transient bit-flip is injected at EVERY communication site (the sweep
# walks site indices, rotating the victim rank, until the plan stops firing
# on any rank) and each run must detect the flip, retry it away, and finish
# with seeds byte-identical to the clean verified reference; sticky flips
# at a spread of sites must exhaust the retry budget and escalate through
# shrink-and-heal to the same seeds; flaky delivery must be absorbed by the
# retry budget without escalation.  A corrupted payload may cost retries or
# a heal, but never a silently wrong seed set.
#
# The TSan stage builds with -DRIPPLES_SANITIZE=thread (see the top-level
# CMakeLists.txt) and runs mpsim_test, fault_test, and select_test.  OpenMP
# barrier synchronization is invisible to TSan because libgomp is not
# instrumented; scripts/tsan-suppressions.txt silences those known false
# positives while keeping the std::thread-based mpsim runtime fully checked.
#
# The ASan stage builds with -DRIPPLES_SANITIZE=address and runs imm_test,
# rrr_test, and sampler_test — the drivers with the largest allocation
# churn (RRR collections, flat storage, hypergraph index, fused lane-mask
# scratch) and therefore the best leak/overflow coverage per test second.
#
# The UBSan stage builds with -DRIPPLES_SANITIZE=undefined
# (-fno-sanitize-recover=all, so any UB report fails the run) and runs
# mpsim_test and fault_test: the failure paths unwind mid-collective, which
# is exactly where lifetime and arithmetic UB would hide.
#
# The soak stage reruns the `faults` ctest label repeatedly
# (RIPPLES_SOAK_ITERATIONS, default 5): the recovery protocol's historical
# bugs (stale-waiter barrier underflow) were scheduling races that a single
# pass can miss.
#
# The checkpoint stage is a kill-resume soak: after `ctest -L checkpoint`,
# it runs imm_cli with --checkpoint-dir, SIGKILLs it at a randomized moment
# mid-run (RIPPLES_KILL_ITERATIONS, default 5, different delay each time),
# resumes with --resume, and requires compare_reports.py --check-seeds to
# find the resumed run byte-identical to an uninterrupted reference.  This
# exercises the one thing in-process tests cannot: real SIGKILL, a fresh
# process, and on-disk snapshots as the only carried-over state.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
soak_iterations=${RIPPLES_SOAK_ITERATIONS:-5}
kill_iterations=${RIPPLES_KILL_ITERATIONS:-5}
run_tsan=1
run_asan=1
run_ubsan=1
run_soak=1
run_sparse=1
run_checkpoint=1
run_fused=1
run_observability=1
run_membudget=1
run_stealing=1
run_integrity=1
for arg in "$@"; do
  case "$arg" in
    --no-tsan) run_tsan=0 ;;
    --no-asan) run_asan=0 ;;
    --no-ubsan) run_ubsan=0 ;;
    --no-soak) run_soak=0 ;;
    --no-sparse) run_sparse=0 ;;
    --no-checkpoint) run_checkpoint=0 ;;
    --no-fused) run_fused=0 ;;
    --no-observability) run_observability=0 ;;
    --no-membudget) run_membudget=0 ;;
    --no-stealing) run_stealing=0 ;;
    --no-integrity) run_integrity=0 ;;
    *) echo "unknown option: $arg (--no-tsan | --no-asan | --no-ubsan | --no-soak | --no-sparse | --no-checkpoint | --no-fused | --no-observability | --no-membudget | --no-stealing | --no-integrity)" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "$jobs"

if [[ "$run_sparse" == 1 ]]; then
  echo "== sparse: ctest -L selection + IMM drivers under RIPPLES_SELECTION_EXCHANGE=sparse =="
  RIPPLES_SELECTION_EXCHANGE=sparse \
    ctest --test-dir build -L selection --output-on-failure -j "$jobs"
  RIPPLES_SELECTION_EXCHANGE=sparse ./build/tests/imm_test
  RIPPLES_SELECTION_EXCHANGE=sparse ./build/tests/driver_matrix_test
  RIPPLES_SELECTION_EXCHANGE=sparse ./build/tests/fault_test
fi

if [[ "$run_fused" == 1 ]]; then
  echo "== fused: sampling + driver + checkpoint suites under RIPPLES_SAMPLER=fused =="
  RIPPLES_SAMPLER=fused ./build/tests/sampler_test
  RIPPLES_SAMPLER=fused ./build/tests/imm_test
  RIPPLES_SAMPLER=fused ./build/tests/driver_matrix_test
  RIPPLES_SAMPLER=fused ./build/tests/checkpoint_test
  RIPPLES_SAMPLER=fused ./build/tests/fault_test
fi

if [[ "$run_soak" == 1 ]]; then
  echo "== faults: soak (${soak_iterations}x ctest -L faults) =="
  for ((i = 1; i <= soak_iterations; ++i)); do
    ctest --test-dir build -L faults --output-on-failure -j "$jobs" \
      > /dev/null || { echo "fault soak failed on iteration $i" >&2; exit 1; }
  done
fi

if [[ "$run_checkpoint" == 1 ]]; then
  echo "== checkpoint: ctest -L checkpoint =="
  ctest --test-dir build -L checkpoint --output-on-failure -j "$jobs"

  echo "== checkpoint: kill-resume soak (${kill_iterations}x SIGKILL mid-run + --resume) =="
  ckpt_work=$(mktemp -d)
  trap 'rm -rf "$ckpt_work"' EXIT
  ckpt_cli=./build/examples/imm_cli
  # ~2.5 s of martingale rounds: long enough that a randomized kill lands
  # anywhere from before the first snapshot to after acceptance.
  ckpt_args=(--driver dist --ranks 3 --dataset cit-HepTh --scale 0.2
             --epsilon 0.3 -k 32 --seed 2019)
  # Uninterrupted reference, checkpointing enabled so its registry carries
  # the same imm.checkpoint.* counters the resumed runs will.
  "$ckpt_cli" "${ckpt_args[@]}" --checkpoint-dir "$ckpt_work/ref-ckpt" \
    --json-report "$ckpt_work/reference.json" > /dev/null
  for ((i = 1; i <= kill_iterations; ++i)); do
    dir="$ckpt_work/run-$i"
    delay_ms=$(( (RANDOM % 1900) + 300 ))
    "$ckpt_cli" "${ckpt_args[@]}" --checkpoint-dir "$dir" > /dev/null 2>&1 &
    victim=$!
    sleep "$(printf '%d.%03d' $((delay_ms / 1000)) $((delay_ms % 1000)))"
    kill -9 "$victim" 2>/dev/null || true
    wait "$victim" 2>/dev/null || true
    "$ckpt_cli" "${ckpt_args[@]}" --checkpoint-dir "$dir" --resume \
      --json-report "$ckpt_work/resumed-$i.json" > /dev/null
    # Identity is the point here (--check-seeds is exact); the perf families
    # are relaxed because a resumed run legitimately does less work and this
    # leg runs back-to-back processes, not min-of-N measurements.
    python3 scripts/compare_reports.py --check-seeds --allow-missing \
      --phase-tolerance 2.0 --counter-tolerance 10 \
      "$ckpt_work/reference.json" "$ckpt_work/resumed-$i.json" > /dev/null \
      || { echo "kill-resume soak: resumed run diverged from the reference" \
                "on iteration $i (killed at ${delay_ms}ms)" >&2; exit 1; }
    echo "  iteration $i: killed at ${delay_ms}ms, resume matched the reference"
  done
fi

if [[ "$run_observability" == 1 ]]; then
  echo "== observability: 4-rank trace + memory profile through the analysis pipeline =="
  # No EXIT trap here — the checkpoint leg owns it; clean up explicitly.
  obs_work=$(mktemp -d)
  ./build/examples/imm_cli --driver dist --ranks 4 --sampler fused \
    --selection-exchange sparse --dataset cit-HepTh --scale 0.1 \
    --epsilon 0.5 -k 16 --seed 2019 \
    --trace "$obs_work/trace.json" --profile-mem \
    --json-report "$obs_work/report.json" > /dev/null \
    || { rm -rf "$obs_work"; echo "observability run failed" >&2; exit 1; }
  python3 scripts/validate_trace.py "$obs_work/trace.json" \
    --require-categories imm,sampler,select,mpsim,flow \
    --require-counters mem.tracker_live_bytes,mem.tracker_peak_bytes,mem.rss_bytes \
    --check-flows \
    || { rm -rf "$obs_work"; echo "observability: trace validation failed" >&2; exit 1; }
  python3 scripts/analyze_trace.py "$obs_work/trace.json" \
    || { rm -rf "$obs_work"; echo "observability: trace analysis failed" >&2; exit 1; }
  # The report must carry the v5 observability payload: a rounds ledger row
  # set covering all 4 ranks and a non-empty memory timeline.
  python3 - "$obs_work/report.json" <<'EOF' \
    || { rm -rf "$obs_work"; echo "observability: report payload check failed" >&2; exit 1; }
import json, sys
doc = json.load(open(sys.argv[1]))
report = doc["reports"][0]
rounds = report["rounds"]
assert rounds, "empty rounds ledger"
ranks = {entry["rank"] for r in rounds for entry in r["per_rank"]}
assert ranks == set(range(4)), f"rounds cover ranks {sorted(ranks)}, expected 0..3"
assert all("imbalance_factor" in r for r in rounds)
assert report["memory_timeline"], "empty memory timeline"
assert report["storage"]["tracker_peak_bytes"] >= 0
assert report["storage"]["peak_rss_bytes"] > 0
print(f"  report: {len(rounds)} rounds, {len(report['memory_timeline'])} memory samples")
EOF
  rm -rf "$obs_work"
fi

if [[ "$run_membudget" == 1 ]]; then
  echo "== membudget: ctest -L memory =="
  ctest --test-dir build -L memory --output-on-failure -j "$jobs"

  echo "== membudget: degradation ladder end to end =="
  # No EXIT trap here — the checkpoint leg owns it; clean up explicitly.
  mem_work=$(mktemp -d)
  mem_cli=./build/examples/imm_cli
  mem_args=(--driver mt --threads 3 --dataset cit-HepTh --scale 0.1
            --epsilon 0.5 -k 16 --seed 2019)
  # Plain-representation reference: records the peak to beat and the seed
  # set every governed run below must reproduce byte-identically.  A
  # generous (never-binding) budget keeps the tracker charged so the
  # tracker_peak_bytes and mem.budget.* families are present on both sides
  # of every diff below.
  "$mem_cli" "${mem_args[@]}" --rrr-compress off --mem-budget 1073741824 \
    --json-report "$mem_work/reference.json" > /dev/null \
    || { rm -rf "$mem_work"; echo "membudget: reference run failed" >&2; exit 1; }
  # Rung 1, forced: --rrr-compress always must cut the RRR peak >= 3x while
  # changing nothing the algorithm can observe.
  "$mem_cli" "${mem_args[@]}" --rrr-compress always \
    --json-report "$mem_work/compressed.json" > /dev/null \
    || { rm -rf "$mem_work"; echo "membudget: forced-compression run failed" >&2; exit 1; }
  python3 scripts/compare_reports.py --check-seeds --allow-missing \
    --phase-tolerance 2.0 --counter-tolerance 10 \
    "$mem_work/reference.json" "$mem_work/compressed.json" > /dev/null \
    || { rm -rf "$mem_work"; echo "membudget: compressed seeds diverged from the reference" >&2; exit 1; }
  tight_budget=$(python3 - "$mem_work/reference.json" "$mem_work/compressed.json" <<'EOF'
import json, sys
ref = json.load(open(sys.argv[1]))["reports"][0]
comp = json.load(open(sys.argv[2]))["reports"][0]
plain = ref["storage"]["rrr_peak_bytes"]
squeezed = comp["storage"]["rrr_peak_bytes"]
assert squeezed * 3 <= plain, \
    f"compression saved only {plain / max(squeezed, 1):.2f}x (need >= 3x)"
assert not comp.get("degraded"), "forced compression must not degrade"
print(plain // 2)
EOF
  ) || { rm -rf "$mem_work"; echo "membudget: compression-ratio check failed" >&2; exit 1; }
  echo "  forced compression: >= 3x peak reduction, seeds identical"
  # Rung 2, under pressure: a budget of half the plain peak must trip the
  # governor into compression mid-run and still finish complete — same
  # seeds, not degraded.
  "$mem_cli" "${mem_args[@]}" --mem-budget "$tight_budget" \
    --json-report "$mem_work/tight.json" > /dev/null \
    || { rm -rf "$mem_work"; echo "membudget: tight-budget run failed" >&2; exit 1; }
  python3 - "$mem_work/tight.json" <<'EOF' \
    || { rm -rf "$mem_work"; echo "membudget: tight-budget payload check failed" >&2; exit 1; }
import json, sys
doc = json.load(open(sys.argv[1]))
counters = doc["registry"]["counters"]
assert counters.get("mem.budget.reservations", 0) >= 1, "budget never consulted"
assert counters.get("mem.budget.compress_switches", 0) >= 1, \
    "governor never switched to compression"
assert not doc["reports"][0].get("degraded"), \
    "tight budget should finish complete, not degraded"
EOF
  # Identity is the point; the memory families are relaxed because a run
  # that switches representation mid-flight legitimately reserves and peaks
  # differently from the plain reference it must still agree with.
  python3 scripts/compare_reports.py --check-seeds --allow-missing \
    --phase-tolerance 2.0 --counter-tolerance 10 --memory-tolerance 2.0 \
    "$mem_work/reference.json" "$mem_work/tight.json" > /dev/null \
    || { rm -rf "$mem_work"; echo "membudget: tight-budget seeds diverged from the reference" >&2; exit 1; }
  echo "  tight budget ($tight_budget bytes): switched to compression, seeds identical"
  # Rung 3, below the floor: soak the whole ladder under an RLIMIT_AS cap.
  # The shared-memory driver must end in a degraded-but-certified report
  # (exit 0, "degraded" on stdout) and the distributed driver in a diagnosed
  # MemoryBudgetExceeded (nonzero exit); neither may ever surface a raw
  # bad_alloc or reach terminate().
  for floor_budget in 65536 262144 1048576; do
    if ! bash -c "ulimit -v 4194304; exec '$mem_cli' --driver mt --threads 3 \
          --dataset cit-HepTh --scale 0.1 --epsilon 0.5 -k 16 --seed 2019 \
          --mem-budget $floor_budget" \
          > "$mem_work/floor-mt-$floor_budget.log" 2>&1; then
      cat "$mem_work/floor-mt-$floor_budget.log" >&2
      rm -rf "$mem_work"
      echo "membudget: shared-memory run under a $floor_budget-byte floor must degrade, not fail" >&2
      exit 1
    fi
    grep -q "degraded: memory budget reached" \
        "$mem_work/floor-mt-$floor_budget.log" \
      || { rm -rf "$mem_work"; echo "membudget: mt floor run at $floor_budget finished without degrading" >&2; exit 1; }
    if bash -c "ulimit -v 4194304; exec '$mem_cli' --driver dist --ranks 3 \
          --dataset cit-HepTh --scale 0.1 --epsilon 0.5 -k 16 --seed 2019 \
          --mem-budget $floor_budget" \
          > "$mem_work/floor-dist-$floor_budget.log" 2>&1; then
      rm -rf "$mem_work"
      echo "membudget: distributed run under a $floor_budget-byte floor must refuse, not succeed" >&2
      exit 1
    fi
    grep -q "memory budget exceeded" "$mem_work/floor-dist-$floor_budget.log" \
      || { cat "$mem_work/floor-dist-$floor_budget.log" >&2; rm -rf "$mem_work";
           echo "membudget: dist floor run at $floor_budget died without the budget diagnostic" >&2; exit 1; }
    if grep -qE "bad_alloc|terminate called" "$mem_work"/floor-*-"$floor_budget".log; then
      rm -rf "$mem_work"
      echo "membudget: a floor run at $floor_budget surfaced a raw allocation failure" >&2
      exit 1
    fi
    echo "  floor budget $floor_budget: mt degraded with certificate, dist refused with diagnostic"
  done
  rm -rf "$mem_work"
fi

if [[ "$run_stealing" == 1 ]]; then
  echo "== stealing: ctest -L stealing =="
  ctest --test-dir build -L stealing --output-on-failure -j "$jobs"

  echo "== stealing: fig7 skewed-partition imbalance gate (4-rank fused+sparse, min-of-3) =="
  # No EXIT trap here — the checkpoint leg owns it; clean up explicitly.
  steal_work=$(mktemp -d)
  steal_cli=./build/examples/imm_cli
  # --steal-skew homes every stream on rank 0 — the manufactured fig7
  # pathology.  The baseline keeps stealing off (factor: hundreds); the
  # steal-on runs must close the tail AND stay byte-identical.
  steal_args=(--driver dist --ranks 4 --sampler fused
              --selection-exchange sparse --dataset cit-HepTh --scale 0.1
              --epsilon 0.5 -k 16 --seed 2019 --steal-skew)
  for i in 1 2 3; do
    "$steal_cli" "${steal_args[@]}" --trace "$steal_work/base-$i.json" \
      --json-report "$steal_work/base-report-$i.json" > /dev/null \
      || { rm -rf "$steal_work"; echo "stealing: baseline run $i failed" >&2; exit 1; }
    "$steal_cli" "${steal_args[@]}" --steal on \
      --trace "$steal_work/steal-$i.json" \
      --json-report "$steal_work/steal-report-$i.json" > /dev/null \
      || { rm -rf "$steal_work"; echo "stealing: steal-on run $i failed" >&2; exit 1; }
    # Gate (nonzero exit): with stealing on, no substantial round may
    # exceed a 3.0 max/median compute imbalance.  Rounds under 40 ms (the
    # final top-up/select round here, ~16 ms) are dominated by
    # per-collective accounting noise on one core, not load imbalance —
    # the min-of-3 reduction check below still covers them at >= 5 ms. The
    # estimation rounds (the actual fig7 pathology) run 80-120 ms; 40 ms
    # splits the two populations with margin on both sides.
    python3 scripts/analyze_trace.py "$steal_work/steal-$i.json" --quiet \
      --max-imbalance 3.0 --imbalance-min-wall-ms 40 --print-imbalance \
      > "$steal_work/steal-imbal-$i.txt" \
      || { cat "$steal_work/steal-imbal-$i.txt" >&2; rm -rf "$steal_work";
           echo "stealing: steal-on run $i violated --max-imbalance 3.0" >&2; exit 1; }
    python3 scripts/analyze_trace.py "$steal_work/base-$i.json" --quiet \
      --print-imbalance > "$steal_work/base-imbal-$i.txt" \
      || { rm -rf "$steal_work"; echo "stealing: baseline trace analysis failed on run $i" >&2; exit 1; }
    # Byte-identity across the placement change: seeds, theta, |R|, and
    # coverage exact; placement-sensitive families excluded by design.
    python3 scripts/compare_reports.py --check-seeds --allow-missing \
      --ignore-placement --phase-tolerance 2.0 --counter-tolerance 10 \
      "$steal_work/base-report-$i.json" "$steal_work/steal-report-$i.json" \
      > /dev/null \
      || { rm -rf "$steal_work";
           echo "stealing: steal-on run $i diverged from the no-steal baseline" >&2; exit 1; }
  done
  # The headline number: min-of-3 worst measurable round per side, >= 3x
  # apart.  min-of-3 makes a lucky baseline or an unlucky steal run
  # insufficient — the reduction must hold on the best run of each side.
  python3 - "$steal_work" <<'EOF' \
    || { rm -rf "$steal_work"; echo "stealing: imbalance-reduction check failed" >&2; exit 1; }
import sys

def worst_factor(path):
    worst = 1.0
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            if not line.startswith("IMBALANCE\t"):
                continue
            _, _, wall_ms, factor = line.rstrip("\n").split("\t")
            if float(wall_ms) >= 5.0:
                worst = max(worst, float(factor))
    return worst

work = sys.argv[1]
base = min(worst_factor(f"{work}/base-imbal-{i}.txt") for i in (1, 2, 3))
steal = min(worst_factor(f"{work}/steal-imbal-{i}.txt") for i in (1, 2, 3))
assert steal > 0 and base >= 3.0 * steal, (
    f"imbalance reduced only {base / steal:.2f}x "
    f"(baseline min-of-3 worst {base:.2f}, stealing {steal:.2f}; need >= 3x)")
print(f"  imbalance factor: {base:.1f} -> {steal:.2f} "
      f"({base / steal:.0f}x reduction, min-of-3 worst rounds)")
EOF
  echo "  3/3 steal-on runs byte-identical to the skewed no-steal baseline"
  rm -rf "$steal_work"
fi

if [[ "$run_integrity" == 1 ]]; then
  echo "== integrity: ctest -L integrity =="
  ctest --test-dir build -L integrity --output-on-failure -j "$jobs"

  echo "== integrity: corruption sweep over every communication site (4-rank fused+sparse+steal) =="
  # No EXIT trap here — the checkpoint leg owns it; clean up explicitly.
  int_work=$(mktemp -d)
  int_cli=./build/examples/imm_cli
  int_args=(--driver dist --ranks 4 --sampler fused --selection-exchange sparse
            --steal on --dataset cit-HepTh --scale 0.1 --epsilon 0.5 -k 16
            --seed 2019)
  # References: the unverified run proves the checksum layer changes nothing
  # observable; the verified run is the byte-identity baseline every injected
  # run below must reproduce.
  "$int_cli" "${int_args[@]}" --json-report "$int_work/plain.json" > /dev/null \
    || { rm -rf "$int_work"; echo "integrity: unverified reference run failed" >&2; exit 1; }
  "$int_cli" "${int_args[@]}" --verify-collectives --scrub-rrr on \
    --json-report "$int_work/clean.json" > /dev/null \
    || { rm -rf "$int_work"; echo "integrity: verified reference run failed" >&2; exit 1; }
  # --ignore-placement: with --steal on, who ends up doing which chunk is
  # timing-dependent, and the CRC work shifts timing — results must still
  # be byte-identical.
  python3 scripts/compare_reports.py --check-seeds --ignore-placement \
    --allow-missing --phase-tolerance 2.0 --counter-tolerance 100 \
    "$int_work/plain.json" "$int_work/clean.json" > /dev/null \
    || { rm -rf "$int_work"; echo "integrity: enabling verification changed the results" >&2; exit 1; }
  # Paranoid scrubbing re-checks every RRR block on every iterate; it may
  # cost time but must be invisible to the algorithm.
  "$int_cli" "${int_args[@]}" --verify-collectives --scrub-rrr paranoid \
    --json-report "$int_work/paranoid.json" > /dev/null \
    || { rm -rf "$int_work"; echo "integrity: paranoid scrub run failed" >&2; exit 1; }
  python3 scripts/compare_reports.py --check-seeds --ignore-placement \
    --allow-missing --phase-tolerance 2.0 --counter-tolerance 100 \
    "$int_work/plain.json" "$int_work/paranoid.json" > /dev/null \
    || { rm -rf "$int_work"; echo "integrity: paranoid scrubbing changed the results" >&2; exit 1; }

  # Transient flip at EVERY communication site: the CRC must catch it, the
  # bounded retry must retransmit clean bytes, and the run must finish with
  # the reference seeds — detected and retried, never silently wrong, never
  # escalated.  Site numbering is per rank, so the victim rank rotates while
  # the site index walks the space; a site that fires on no rank is a
  # payload-less operation (a barrier carries nothing to corrupt), so the
  # sweep only concludes the space is exhausted after eight consecutive
  # all-rank misses, well past any hole the collective schedule contains.
  transient_runs=0
  site=0
  last_fired=-1
  miss_streak=0
  while :; do
    if (( site >= 512 )); then
      rm -rf "$int_work"
      echo "integrity: transient sweep did not terminate within 512 sites" >&2
      exit 1
    fi
    fired=0
    for probe in 0 1 2 3; do
      rank=$(( (site + probe) % 4 ))
      "$int_cli" "${int_args[@]}" --verify-collectives --scrub-rrr on \
        --inject-fault "rank=$rank,site=$site,kind=corrupt" \
        --json-report "$int_work/corrupt.json" > /dev/null \
        || { rm -rf "$int_work"; echo "integrity: transient flip at rank=$rank site=$site was not survived" >&2; exit 1; }
      fired=$(python3 - "$int_work/corrupt.json" <<'EOF'
import json, sys
counters = json.load(open(sys.argv[1]))["registry"]["counters"]
if not counters.get("integrity.injected_corruptions", 0):
    print(0)  # site is beyond this rank's last communication operation
    sys.exit(0)
assert counters.get("integrity.corruptions_detected", 0) >= 1, "flip not detected"
assert counters.get("integrity.retries", 0) >= 1, "no retry recorded"
assert not counters.get("integrity.escalations", 0), "transient flip escalated"
print(1)
EOF
      ) || { rm -rf "$int_work"; echo "integrity: transient counter check failed at rank=$rank site=$site" >&2; exit 1; }
      [[ "$fired" == 1 ]] && break
    done
    if [[ "$fired" == 0 ]]; then
      miss_streak=$(( miss_streak + 1 ))
      if (( miss_streak >= 8 )); then
        break
      fi
      site=$(( site + 1 ))
      continue
    fi
    miss_streak=0
    last_fired=$site
    python3 scripts/compare_reports.py --check-seeds --ignore-placement \
      --allow-missing --phase-tolerance 2.0 --counter-tolerance 100 \
      "$int_work/clean.json" "$int_work/corrupt.json" > /dev/null \
      || { rm -rf "$int_work"; echo "integrity: seeds diverged after a transient flip at rank=$rank site=$site" >&2; exit 1; }
    transient_runs=$(( transient_runs + 1 ))
    site=$(( site + 1 ))
  done
  sites=$(( last_fired + 1 ))
  if (( sites < 16 )); then
    rm -rf "$int_work"
    echo "integrity: sweep found only $sites communication sites — the probe looks broken" >&2
    exit 1
  fi
  echo "  transient flips: all $transient_runs sites detected, retried, byte-identical"

  # Sticky flips re-corrupt every retransmission, so the retry budget must
  # exhaust and escalate the corrupter through the crash path — shrink,
  # heal, regenerate — to the same seeds.  The spread covers early setup,
  # mid-run sampling/steal traffic, and late selection.
  sticky_runs=0
  for slot in 0 1 2 3 4 5 6 7; do
    site=$(( slot * (sites - 1) / 7 ))
    # As in the transient sweep, probe all four victims: with --steal on a
    # given rank's site count is placement-dependent, so a fixed rank may
    # simply never reach this site index.  A site that fires on no rank is
    # a payload-less hole (barrier) — skip it, the floor below catches a
    # broken spread.
    for probe in 0 1 2 3; do
      rank=$(( (slot + probe) % 4 ))
      "$int_cli" "${int_args[@]}" --verify-collectives --scrub-rrr on --recover \
        --inject-fault "rank=$rank,site=$site,kind=corrupt,sticky" \
        --json-report "$int_work/sticky.json" > /dev/null \
        || { rm -rf "$int_work"; echo "integrity: sticky flip at rank=$rank site=$site was not healed" >&2; exit 1; }
      fired=$(python3 - "$int_work/sticky.json" <<'EOF'
import json, sys
counters = json.load(open(sys.argv[1]))["registry"]["counters"]
if not counters.get("integrity.injected_corruptions", 0):
    print(0)
    sys.exit(0)
assert counters.get("integrity.corruptions_detected", 0) >= 1, "flip not detected"
assert counters.get("integrity.escalations", 0) >= 1, "sticky flip never escalated"
print(1)
EOF
      ) || { rm -rf "$int_work"; echo "integrity: sticky counter check failed at rank=$rank site=$site" >&2; exit 1; }
      [[ "$fired" == 1 ]] || continue
      # --seeds-only, not --check-seeds: escalation kills the corrupter, and
      # the heal contract promises the failure-free SEED SET — a non-boundary
      # site may shift martingale acceptance by a round, moving theta.  The
      # phase floor mutes timing noise: a heal legitimately spends tens of
      # milliseconds in backoff + shrink + regeneration that the clean run
      # never pays, and this whole run is only ~half a second.
      python3 scripts/compare_reports.py --seeds-only --ignore-placement \
        --allow-missing --phase-tolerance 2.0 --phase-min-seconds 1.0 \
        --counter-tolerance 100 \
        "$int_work/clean.json" "$int_work/sticky.json" > /dev/null \
        || { rm -rf "$int_work"; echo "integrity: seeds diverged after healing a sticky flip at rank=$rank site=$site" >&2; exit 1; }
      sticky_runs=$(( sticky_runs + 1 ))
      break
    done
  done
  if (( sticky_runs < 6 )); then
    rm -rf "$int_work"
    echo "integrity: only $sticky_runs/8 sticky flips fired — the spread looks broken" >&2
    exit 1
  fi
  echo "  sticky flips: $sticky_runs/8 escalated through shrink-and-heal, byte-identical"

  # Flaky delivery fails verification M times then passes; the retry budget
  # (4 attempts) must absorb it — retried, never escalated, no rank loss.
  for spec in 0:1 1:2 2:3 3:2; do
    rank=${spec%%:*}
    attempts=${spec##*:}
    site=$(( (rank + 1) * (sites - 1) / 5 ))
    "$int_cli" "${int_args[@]}" --verify-collectives --scrub-rrr on \
      --inject-fault "rank=$rank,site=$site,kind=flaky,attempts=$attempts" \
      --json-report "$int_work/flaky.json" > /dev/null \
      || { rm -rf "$int_work"; echo "integrity: flaky delivery at rank=$rank site=$site was not absorbed" >&2; exit 1; }
    python3 - "$int_work/flaky.json" <<EOF \
      || { rm -rf "$int_work"; echo "integrity: flaky counter check failed at rank=$rank site=$site" >&2; exit 1; }
import json
counters = json.load(open("$int_work/flaky.json"))["registry"]["counters"]
assert counters.get("integrity.injected_flaky", 0) >= 1, "flaky fault never fired"
assert counters.get("integrity.retries", 0) >= $attempts, "retry budget not exercised"
assert not counters.get("integrity.escalations", 0), "flaky delivery escalated"
EOF
    python3 scripts/compare_reports.py --check-seeds --ignore-placement \
      --allow-missing --phase-tolerance 2.0 --counter-tolerance 100 \
      "$int_work/clean.json" "$int_work/flaky.json" > /dev/null \
      || { rm -rf "$int_work"; echo "integrity: seeds diverged after flaky delivery at rank=$rank site=$site" >&2; exit 1; }
  done
  echo "  flaky delivery: 4/4 absorbed by the retry budget, byte-identical"
  rm -rf "$int_work"
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "== tsan: build mpsim_test + fault_test + select_test + selection_exchange_test + sampler_test + trace_test + metrics_test + memory_budget_test + stealing_test + integrity_test =="
  cmake -B build-tsan -S . -DRIPPLES_SANITIZE=thread \
    -DRIPPLES_ENABLE_BENCHMARKS=OFF -DRIPPLES_ENABLE_EXAMPLES=OFF >/dev/null
  cmake --build build-tsan --target \
    mpsim_test fault_test select_test selection_exchange_test sampler_test \
    trace_test metrics_test memory_budget_test stealing_test integrity_test \
    -j "$jobs"

  echo "== tsan: run =="
  export TSAN_OPTIONS="suppressions=$PWD/scripts/tsan-suppressions.txt"
  ./build-tsan/tests/mpsim_test
  ./build-tsan/tests/fault_test
  ./build-tsan/tests/select_test
  ./build-tsan/tests/selection_exchange_test
  # The observatory's concurrency surface: flow-id allocation and ring
  # publication from rank threads, the completer's id-block handoff, the
  # background resource sampler against tracker updates and ledger appends.
  ./build-tsan/tests/trace_test
  ./build-tsan/tests/metrics_test
  # The fused engine shares only pre-grown collection slots between worker
  # threads; run the sampler suite in both engines to race-check that claim.
  ./build-tsan/tests/sampler_test
  RIPPLES_SAMPLER=fused ./build-tsan/tests/sampler_test
  # The memory governor's tracker and oom-fault registry are shared across
  # rank threads; the budget suite races try_reserve against the ladder.
  ./build-tsan/tests/memory_budget_test
  # The steal channel's publish/pop/acquire and the intra-rank chunk queues
  # are lock-based cross-thread handoff; the perturbation sweep drives
  # every schedule through them under the race detector.
  ./build-tsan/tests/stealing_test
  # The verified-exchange protocol hashes every member's posted payload from
  # every rank between two barriers; the corruption/retry/escalation suite
  # drives those cross-thread reads, the backoff clock hook, and the scrub
  # counters under the race detector.
  ./build-tsan/tests/integrity_test
fi

if [[ "$run_asan" == 1 ]]; then
  echo "== asan: build imm_test + rrr_test + sampler_test + memory_budget_test + stealing_test =="
  cmake -B build-asan -S . -DRIPPLES_SANITIZE=address \
    -DRIPPLES_ENABLE_BENCHMARKS=OFF -DRIPPLES_ENABLE_EXAMPLES=OFF >/dev/null
  cmake --build build-asan --target imm_test rrr_test sampler_test \
    memory_budget_test stealing_test -j "$jobs"

  echo "== asan: run =="
  ./build-asan/tests/imm_test
  ./build-asan/tests/rrr_test
  # The fused kernel's counting-sort emission indexes scratch by lane mask
  # words; ASan checks those stores stay inside the pre-sized buffers.
  ./build-asan/tests/sampler_test
  RIPPLES_SAMPLER=fused ./build-asan/tests/sampler_test
  # The compressed store's varint encoder/decoder and the ladder's window
  # hand-off are the newest pointer arithmetic in the repo; leak/overflow
  # check them under both the plain and forced-compression paths.
  ./build-asan/tests/memory_budget_test
  # Chunk enumeration writes sets[first_slot + j] computed from saturating
  # index arithmetic; ASan checks every stolen chunk's stores stay inside
  # the pre-grown collection.
  ./build-asan/tests/stealing_test
fi

if [[ "$run_ubsan" == 1 ]]; then
  echo "== ubsan: build mpsim_test + fault_test =="
  cmake -B build-ubsan -S . -DRIPPLES_SANITIZE=undefined \
    -DRIPPLES_ENABLE_BENCHMARKS=OFF -DRIPPLES_ENABLE_EXAMPLES=OFF >/dev/null
  cmake --build build-ubsan --target mpsim_test fault_test -j "$jobs"

  echo "== ubsan: run =="
  ./build-ubsan/tests/mpsim_test
  ./build-ubsan/tests/fault_test
fi

echo "== all checks passed =="
