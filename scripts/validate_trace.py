#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by ripples::trace.

Checks the structural schema that Perfetto / chrome://tracing require (the
JSON Object Format: a top-level object with a `traceEvents` array of events
carrying name/ph/ts/pid/tid, durations on complete events) plus the
ripples-specific envelope (`otherData` with a drop count).  Optionally
enforces that specific categories were traced, which is how the test suite
pins the "spans from >= 4 subsystems" acceptance bar.

Usage:
  validate_trace.py trace.json [--require-categories imm,sampler,select,mpsim]
                               [--min-events N]

Exit status: 0 when valid, 1 on any violation (each is printed).
"""

import argparse
import json
import sys

VALID_PHASES = {"X", "i", "C", "M"}


def validate(doc, require_categories, min_events):
    errors = []

    def check(condition, message):
        if not condition:
            errors.append(message)
        return condition

    if not check(isinstance(doc, dict), "top level must be a JSON object"):
        return errors, {}
    events = doc.get("traceEvents")
    if not check(isinstance(events, list), "missing traceEvents array"):
        return errors, {}
    other = doc.get("otherData")
    check(isinstance(other, dict) and "dropped_events" in other,
          "missing otherData.dropped_events")

    categories = set()
    pids = set()
    data_events = 0
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not check(isinstance(event, dict), f"{where}: not an object"):
            continue
        check(isinstance(event.get("name"), str), f"{where}: missing name")
        phase = event.get("ph")
        if not check(phase in VALID_PHASES,
                     f"{where}: bad ph {phase!r} (expected one of "
                     f"{sorted(VALID_PHASES)})"):
            continue
        check(isinstance(event.get("pid"), int), f"{where}: missing pid")
        if phase == "M":
            continue  # metadata events carry no timestamp
        data_events += 1
        pids.add(event.get("pid"))
        categories.add(event.get("cat"))
        check(isinstance(event.get("cat"), str), f"{where}: missing cat")
        check(isinstance(event.get("tid"), int), f"{where}: missing tid")
        ts = event.get("ts")
        check(isinstance(ts, (int, float)) and ts >= 0,
              f"{where}: bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            check(isinstance(dur, (int, float)) and dur >= 0,
                  f"{where}: complete event needs dur >= 0, got {dur!r}")
        if phase == "i":
            check(event.get("s") in ("t", "p", "g"),
                  f"{where}: instant needs scope s")

    check(data_events >= min_events,
          f"expected >= {min_events} data events, found {data_events}")
    for category in require_categories:
        check(category in categories,
              f"required category {category!r} absent "
              f"(traced: {sorted(c for c in categories if c)})")

    summary = {
        "events": data_events,
        "categories": sorted(c for c in categories if c),
        "pids": sorted(pids),
        "dropped": (other or {}).get("dropped_events"),
    }
    return errors, summary


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace-event JSON file to validate")
    parser.add_argument("--require-categories", default="",
                        help="comma-separated categories that must appear")
    parser.add_argument("--min-events", type=int, default=1,
                        help="minimum number of data events (default 1)")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot load {args.trace}: {error}", file=sys.stderr)
        return 1

    required = [c for c in args.require_categories.split(",") if c]
    errors, summary = validate(doc, required, args.min_events)
    if errors:
        for message in errors:
            print(f"error: {message}", file=sys.stderr)
        print(f"{args.trace}: INVALID ({len(errors)} problem(s))",
              file=sys.stderr)
        return 1
    print(f"{args.trace}: valid trace with {summary['events']} events, "
          f"categories={summary['categories']}, pids={summary['pids']}, "
          f"dropped={summary['dropped']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
