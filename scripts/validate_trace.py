#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file emitted by ripples::trace.

Checks the structural schema that Perfetto / chrome://tracing require (the
JSON Object Format: a top-level object with a `traceEvents` array of events
carrying name/ph/ts/pid/tid, durations on complete events, nonzero binding
ids on flow events) plus the ripples-specific envelope (`otherData` with a
drop count).  Optionally enforces that specific categories were traced,
which is how the test suite pins the "spans from >= 4 subsystems"
acceptance bar; that flow events pair up (--check-flows); and that named
counter tracks are present (--require-counters).

Usage:
  validate_trace.py trace.json [--require-categories imm,sampler,select,mpsim]
                               [--min-events N]
                               [--check-flows]
                               [--require-counters mem.rss_bytes,...]

Exit status: 0 when valid, 1 on any violation (each is printed).
"""

import argparse
import json
import sys

VALID_PHASES = {"X", "i", "C", "M", "s", "t", "f"}
FLOW_PHASES = {"s", "t", "f"}


def validate(doc, require_categories, min_events, check_flows,
             require_counters):
    errors = []

    def check(condition, message):
        if not condition:
            errors.append(message)
        return condition

    if not check(isinstance(doc, dict), "top level must be a JSON object"):
        return errors, {}
    events = doc.get("traceEvents")
    if not check(isinstance(events, list), "missing traceEvents array"):
        return errors, {}
    other = doc.get("otherData")
    check(isinstance(other, dict) and "dropped_events" in other,
          "missing otherData.dropped_events")

    categories = set()
    pids = set()
    counters = set()
    data_events = 0
    flow_starts = {}   # id -> [ts, ...]
    flow_steps = {}
    flow_ends = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not check(isinstance(event, dict), f"{where}: not an object"):
            continue
        check(isinstance(event.get("name"), str), f"{where}: missing name")
        phase = event.get("ph")
        if not check(phase in VALID_PHASES,
                     f"{where}: bad ph {phase!r} (expected one of "
                     f"{sorted(VALID_PHASES)})"):
            continue
        check(isinstance(event.get("pid"), int), f"{where}: missing pid")
        if phase == "M":
            continue  # metadata events carry no timestamp
        data_events += 1
        pids.add(event.get("pid"))
        categories.add(event.get("cat"))
        check(isinstance(event.get("cat"), str), f"{where}: missing cat")
        check(isinstance(event.get("tid"), int), f"{where}: missing tid")
        ts = event.get("ts")
        check(isinstance(ts, (int, float)) and ts >= 0,
              f"{where}: bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            check(isinstance(dur, (int, float)) and dur >= 0,
                  f"{where}: complete event needs dur >= 0, got {dur!r}")
        if phase == "i":
            check(event.get("s") in ("t", "p", "g"),
                  f"{where}: instant needs scope s")
        if phase == "C":
            counters.add(event.get("name"))
        if phase in FLOW_PHASES:
            flow_id = event.get("id")
            if not check(isinstance(flow_id, int) and flow_id != 0,
                         f"{where}: flow event needs a nonzero id, "
                         f"got {flow_id!r}"):
                continue
            if phase == "f":
                check(event.get("bp") == "e",
                      f"{where}: flow end needs bp=e (enclosing-slice "
                      "binding)")
            bucket = {"s": flow_starts, "t": flow_steps, "f": flow_ends}[phase]
            bucket.setdefault(flow_id, []).append(ts)

    check(data_events >= min_events,
          f"expected >= {min_events} data events, found {data_events}")
    for category in require_categories:
        check(category in categories,
              f"required category {category!r} absent "
              f"(traced: {sorted(c for c in categories if c)})")
    for counter in require_counters:
        check(counter in counters,
              f"required counter track {counter!r} absent "
              f"(traced: {sorted(c for c in counters if c)})")

    if check_flows:
        dropped = (other or {}).get("dropped_events", 0)
        check(dropped == 0,
              f"flow pairing unreliable: {dropped} events were dropped by "
              "the ring buffer (raise trace::set_buffer_capacity)")
        # Every binding id must carry exactly one start and exactly one end
        # (Perfetto draws the arrow from s to f; a dangling or duplicated
        # side renders wrong or not at all), every step/end must have its
        # start, and time must not run backwards along the flow.
        for flow_id, starts in sorted(flow_starts.items()):
            check(len(starts) == 1,
                  f"flow id {flow_id}: {len(starts)} start events "
                  "(expected exactly 1)")
            ends = flow_ends.get(flow_id, [])
            check(len(ends) == 1,
                  f"flow id {flow_id}: {len(ends)} end events "
                  "(expected exactly 1)")
            if len(starts) == 1 and len(ends) == 1:
                check(ends[0] >= starts[0],
                      f"flow id {flow_id}: end ts {ends[0]} precedes "
                      f"start ts {starts[0]}")
            for step_ts in flow_steps.get(flow_id, []):
                check(step_ts >= starts[0],
                      f"flow id {flow_id}: step ts {step_ts} precedes "
                      f"start ts {starts[0]}")
        for flow_id in sorted(set(flow_steps) - set(flow_starts)):
            check(False, f"flow id {flow_id}: step without a start")
        for flow_id in sorted(set(flow_ends) - set(flow_starts)):
            check(False, f"flow id {flow_id}: end without a start")

    summary = {
        "events": data_events,
        "categories": sorted(c for c in categories if c),
        "pids": sorted(pids),
        "flows": len(flow_starts),
        "counters": sorted(c for c in counters if c),
        "dropped": (other or {}).get("dropped_events"),
    }
    return errors, summary


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace-event JSON file to validate")
    parser.add_argument("--require-categories", default="",
                        help="comma-separated categories that must appear")
    parser.add_argument("--min-events", type=int, default=1,
                        help="minimum number of data events (default 1)")
    parser.add_argument("--check-flows", action="store_true",
                        help="require every flow start to pair with exactly "
                             "one end (clean-run invariant)")
    parser.add_argument("--require-counters", default="",
                        help="comma-separated counter-track names that must "
                             "appear")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: cannot load {args.trace}: {error}", file=sys.stderr)
        return 1

    required = [c for c in args.require_categories.split(",") if c]
    required_counters = [c for c in args.require_counters.split(",") if c]
    errors, summary = validate(doc, required, args.min_events,
                               args.check_flows, required_counters)
    if errors:
        for message in errors:
            print(f"error: {message}", file=sys.stderr)
        print(f"{args.trace}: INVALID ({len(errors)} problem(s))",
              file=sys.stderr)
        return 1
    print(f"{args.trace}: valid trace with {summary['events']} events, "
          f"categories={summary['categories']}, pids={summary['pids']}, "
          f"flows={summary['flows']}, dropped={summary['dropped']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
