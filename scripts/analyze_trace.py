#!/usr/bin/env python3
"""Reconstruct the per-round critical path of a ripples trace.

Consumes the Chrome trace-event JSON that --trace writes and answers the
load-imbalance questions the raw timeline only shows visually:

  * Where did each round's wall time go?  For every martingale round the
    round span ("imm.estimation_round", keyed by its `x` arg; the final
    extend+select pair; the resume replay) is aligned across rank rows
    (pids).  The round's wall time W is the slowest rank's span.  Each
    rank's time decomposes into sample compute (sampler batch spans minus
    the collectives nested in them), select compute (select spans minus
    nested collectives), collective wait (top-level mpsim spans), and
    imbalance slack (W minus the rank's own span) — independently measured
    pieces, so their sum matching W is a real check on the
    instrumentation, not an identity.
  * Who was the straggler?  A collective's completer (the last rank to
    arrive) emits the "flow.collective" flow starts that release the
    waiters, so per round the rank emitting the most collective-flow
    starts is the rank the others waited on.
  * Did every sampler batch feed selection?  Every "flow.rrr_batch" start
    must terminate in a flow end inside a select span, and every sampler
    batch span must have a corresponding batch flow on its rank.

Checks (nonzero exit on violation, same contract as compare_reports.py):
  * per-round decomposition sums to W within --sum-tolerance (default
    0.05) on the critical rank;
  * every flow start pairs with exactly one flow end;
  * every sampler batch span is covered by a batch flow on its pid;
  * optional --max-imbalance bound on every round's max/median compute
    imbalance factor; --imbalance-min-wall-ms restricts that gate to
    rounds long enough to measure (sub-millisecond rounds are scheduler
    noise, not load imbalance).

--print-imbalance emits one machine-parseable line per round on stdout
(`IMBALANCE<TAB>label<TAB>wall_ms<TAB>factor`) so callers (check.sh's
stealing leg) can compute before/after ratios without scraping the table.

Usage:
  analyze_trace.py trace.json [--sum-tolerance 0.05] [--max-imbalance F]
                              [--imbalance-min-wall-ms MS]
                              [--print-imbalance] [--quiet]
"""

import argparse
import collections
import json
import sys

ROUND_SPAN = "imm.estimation_round"
FINAL_SPANS = {"imm.sample", "imm.select_seeds"}
REPLAY_SPAN = "imm.resume_replay"
SAMPLER_CATEGORY = "sampler"
SELECT_CATEGORY = "select"
MPSIM_CATEGORY = "mpsim"
BATCH_FLOW = "flow.rrr_batch"
COLLECTIVE_FLOW = "flow.collective"


def load_events(path):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"),
                                                   list):
        raise ValueError(f"{path}: not a trace-event JSON object")
    return doc["traceEvents"]


def spans_by_pid(events):
    """pid -> list of complete ("X") events sorted by start time."""
    out = collections.defaultdict(list)
    for event in events:
        if event.get("ph") == "X":
            out[event["pid"]].append(event)
    for spans in out.values():
        spans.sort(key=lambda e: e["ts"])
    return out


def overlap(span, lo, hi):
    """Microseconds of `span` falling inside [lo, hi]."""
    begin = max(span["ts"], lo)
    end = min(span["ts"] + span.get("dur", 0), hi)
    return max(0.0, end - begin)


def toplevel(spans):
    """Drops spans nested inside an earlier span of the same list (same
    pid/category), so summing durations never double-counts."""
    kept = []
    open_until = -1.0
    for span in spans:  # sorted by ts
        end = span["ts"] + span.get("dur", 0)
        if span["ts"] < open_until:
            continue
        kept.append(span)
        open_until = max(open_until, end)
    return kept


class RoundWindow:
    """One rank's view of one round: the enclosing span interval."""

    def __init__(self, pid, lo, hi):
        self.pid = pid
        self.lo = lo
        self.hi = hi
        self.duration = hi - lo
        self.sample_compute = 0.0
        self.select_compute = 0.0
        self.wait = 0.0

    def attribute(self, rank_spans):
        """Splits the interval using the sampler/select/mpsim spans of this
        pid.  All pieces are measured from their own spans — not derived
        from the round duration — so the sum is a genuine cross-check."""
        inside = [s for s in rank_spans
                  if overlap(s, self.lo, self.hi) > 0]
        # mpsim.rank is the whole-run wrapper around a rank's body, not a
        # collective — counting it as wait would swallow the entire round.
        mpsim = toplevel([s for s in inside
                          if s.get("cat") == MPSIM_CATEGORY
                          and s.get("name") != "mpsim.rank"])
        sampler = toplevel([s for s in inside
                            if s.get("cat") == SAMPLER_CATEGORY])
        select = toplevel([s for s in inside
                           if s.get("cat") == SELECT_CATEGORY])
        self.wait = sum(overlap(s, self.lo, self.hi) for s in mpsim)

        def minus_nested_collectives(outer_list):
            total = 0.0
            for outer in outer_list:
                lo = max(outer["ts"], self.lo)
                hi = min(outer["ts"] + outer.get("dur", 0), self.hi)
                total += hi - lo
                total -= sum(overlap(s, lo, hi) for s in mpsim)
            return max(0.0, total)

        self.sample_compute = minus_nested_collectives(sampler)
        self.select_compute = minus_nested_collectives(select)

    @property
    def compute(self):
        return self.sample_compute + self.select_compute


def collect_rounds(pid_spans):
    """(label, {pid: RoundWindow}) per round, chronological.

    Estimation rounds align across pids by their `x` arg (per-occurrence,
    so a healing replay's second pass at the same x forms its own round);
    the resume replay is one round; the final extend+select pair is one."""
    rounds = {}

    def add(key, pid, lo, hi):
        window = rounds.setdefault(key, {})
        if pid in window:
            window[pid].lo = min(window[pid].lo, lo)
            window[pid].hi = max(window[pid].hi, hi)
            window[pid].duration = window[pid].hi - window[pid].lo
        else:
            window[pid] = RoundWindow(pid, lo, hi)

    for pid, spans in pid_spans.items():
        occurrence = collections.Counter()
        for span in spans:
            name = span.get("name")
            lo, hi = span["ts"], span["ts"] + span.get("dur", 0)
            if name == ROUND_SPAN:
                x = span.get("args", {}).get("x")
                key = ("round", x, occurrence[x])
                occurrence[x] += 1
                add(key, pid, lo, hi)
            elif name == REPLAY_SPAN:
                add(("replay", 0, occurrence["replay"]), pid, lo, hi)
            elif name in FINAL_SPANS:
                add(("final", 0, 0), pid, lo, hi)

    def order(item):
        key, window = item
        return min(w.lo for w in window.values())

    labeled = []
    for key, window in sorted(rounds.items(), key=order):
        kind, x, occurrence = key
        if kind == "round":
            label = f"round {x}" + (f" (retry {occurrence})"
                                    if occurrence else "")
        elif kind == "replay":
            label = "resume replay"
        else:
            label = "final"
        labeled.append((label, window))
    return labeled


def imbalance_factor(computes):
    """max/median over per-rank compute, lower median — mirrors
    metrics::round_imbalance_factor."""
    if len(computes) < 2:
        return 1.0
    ordered = sorted(computes)
    median = ordered[(len(ordered) - 1) // 2]
    return ordered[-1] / median if median > 0 else 1.0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="trace-event JSON file to analyze")
    parser.add_argument("--sum-tolerance", type=float, default=0.05,
                        help="allowed relative gap between the critical "
                             "rank's decomposition and the round wall time "
                             "(default 0.05)")
    parser.add_argument("--max-imbalance", type=float, default=None,
                        help="fail when any round's compute imbalance "
                             "factor exceeds this bound")
    parser.add_argument("--imbalance-min-wall-ms", type=float, default=0.0,
                        help="apply --max-imbalance only to rounds whose "
                             "wall time is at least this many milliseconds "
                             "(default 0: gate every round)")
    parser.add_argument("--print-imbalance", action="store_true",
                        help="emit one IMBALANCE\\tlabel\\twall_ms\\tfactor "
                             "line per round for machine consumption")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-round table, print only "
                             "failures and the summary line")
    args = parser.parse_args()

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    failures = []

    # --- flow bookkeeping ---------------------------------------------------
    flow_starts = collections.defaultdict(list)
    flow_ends = collections.defaultdict(list)
    batch_flow_starts_per_pid = collections.Counter()
    collective_starts = []  # (name-checked) completer-side flow starts
    for event in events:
        phase = event.get("ph")
        if phase == "s":
            flow_starts[event.get("id")].append(event)
            if event.get("name") == BATCH_FLOW:
                batch_flow_starts_per_pid[event["pid"]] += 1
            elif event.get("name") == COLLECTIVE_FLOW:
                collective_starts.append(event)
        elif phase == "f":
            flow_ends[event.get("id")].append(event)

    for flow_id, starts in sorted(flow_starts.items()):
        ends = flow_ends.get(flow_id, [])
        if len(starts) != 1 or len(ends) != 1:
            failures.append(
                f"flow id {flow_id} ({starts[0].get('name')}): "
                f"{len(starts)} start(s), {len(ends)} end(s) — "
                "expected exactly one of each")
    for flow_id in sorted(set(flow_ends) - set(flow_starts)):
        failures.append(f"flow id {flow_id}: end without a start")

    # Every sampler batch span must be covered by a batch flow on its pid.
    pid_spans = spans_by_pid(events)
    for pid, spans in sorted(pid_spans.items()):
        batches = len(toplevel(
            [s for s in spans if s.get("cat") == SAMPLER_CATEGORY]))
        flows = batch_flow_starts_per_pid.get(pid, 0)
        if batches > flows:
            failures.append(
                f"rank {pid}: {batches} sampler batch span(s) but only "
                f"{flows} {BATCH_FLOW} flow(s) — a batch never fed "
                "selection")

    # --- per-round decomposition -------------------------------------------
    rounds = collect_rounds(pid_spans)
    if not rounds:
        failures.append("no martingale round spans found "
                        f"({ROUND_SPAN} / {REPLAY_SPAN} / final pair)")

    header = (f"{'round':<18} {'W(ms)':>9} {'sample':>8} {'select':>8} "
              f"{'wait':>8} {'slack':>8} {'sum/W':>7} {'imbal':>6} "
              "straggler")
    if not args.quiet and rounds:
        print(header)
        print("-" * len(header))

    totals = {"wall": 0.0, "sample": 0.0, "select": 0.0, "wait": 0.0,
              "slack": 0.0}
    for label, window in rounds:
        for rank_window in window.values():
            rank_window.attribute(pid_spans[rank_window.pid])
        wall = max(w.duration for w in window.values())
        critical = max(window.values(), key=lambda w: w.duration)
        sample = sum(w.sample_compute for w in window.values())
        select = sum(w.select_compute for w in window.values())
        wait = sum(w.wait for w in window.values())
        slack = sum(wall - w.duration for w in window.values())
        factor = imbalance_factor([w.compute for w in window.values()])

        # The straggler: who completed (arrived last at) the most
        # collectives inside this round's window.
        lo = min(w.lo for w in window.values())
        hi = max(w.hi for w in window.values())
        completers = collections.Counter(
            e["pid"] for e in collective_starts if lo <= e["ts"] <= hi)
        straggler = (f"rank {completers.most_common(1)[0][0]} "
                     f"({completers.most_common(1)[0][1]} collectives)"
                     if completers else "-")

        # The check: the critical rank's independently measured pieces must
        # reassemble its wall time.  (Aggregates across ranks always sum to
        # ranks*W by construction; the critical rank's do not.)
        accounted = (critical.sample_compute + critical.select_compute +
                     critical.wait)
        gap = abs(wall - accounted) / wall if wall > 0 else 0.0
        if gap > args.sum_tolerance:
            failures.append(
                f"{label}: critical rank {critical.pid} decomposition "
                f"covers {accounted / 1000.0:.3f}ms of {wall / 1000.0:.3f}ms "
                f"wall ({gap * 100.0:.1f}% gap > "
                f"{args.sum_tolerance * 100.0:.0f}% tolerance)")
        if (args.max_imbalance is not None and
                wall / 1000.0 >= args.imbalance_min_wall_ms and
                factor > args.max_imbalance):
            failures.append(f"{label}: imbalance factor {factor:.2f} exceeds "
                            f"--max-imbalance {args.max_imbalance:.2f}")
        if args.print_imbalance:
            print(f"IMBALANCE\t{label}\t{wall / 1000.0:.3f}\t{factor:.4f}")

        totals["wall"] += wall
        totals["sample"] += sample
        totals["select"] += select
        totals["wait"] += wait
        totals["slack"] += slack
        if not args.quiet:
            print(f"{label:<18} {wall / 1000.0:>9.3f} "
                  f"{sample / 1000.0:>8.3f} {select / 1000.0:>8.3f} "
                  f"{wait / 1000.0:>8.3f} {slack / 1000.0:>8.3f} "
                  f"{(1.0 - gap):>6.1%} {factor:>6.2f} {straggler}")

    ranks = max((len(w) for _, w in rounds), default=0)
    if not args.quiet and rounds:
        busy = totals["sample"] + totals["select"]
        denominator = totals["wall"] * max(ranks, 1)
        print("-" * len(header))
        print(f"{ranks} rank(s), {len(rounds)} round(s), critical path "
              f"{totals['wall'] / 1000.0:.3f}ms: "
              f"{busy / denominator:.1%} compute, "
              f"{totals['wait'] / denominator:.1%} collective wait, "
              f"{totals['slack'] / denominator:.1%} imbalance slack"
              if denominator > 0 else "empty trace")

    if failures:
        for message in failures:
            print(f"FAIL  {message}", file=sys.stderr)
        print(f"{args.trace}: FAILED ({len(failures)} problem(s))",
              file=sys.stderr)
        return 1
    print(f"{args.trace}: analysis passed "
          f"({len(rounds)} round(s), {len(flow_starts)} flow(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
