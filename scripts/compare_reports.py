#!/usr/bin/env python3
"""Diff two ripples --json-report files and flag regressions.

Accepts either format the toolchain emits: a report log
({"schema_version", "reports": [...], "registry": ...}, written at exit by
bench binaries and imm_cli) or a single standalone RunReport document.
Reports are matched by driver name in order of appearance, so a baseline and
candidate produced by the same bench invocation line up automatically.

Four families of checks, each with its own threshold:

  * phase wall-times (`phases_seconds`): candidate may exceed baseline by
    --phase-tolerance (relative, default 0.25) before a phase counts as a
    regression, and only when the absolute growth also exceeds
    --phase-min-seconds (default 0.05) — sub-tick phases are noise.
  * mpsim collective traffic (`mpsim.<collective>.{calls,bytes}`): the
    communication volume of a fixed configuration is deterministic, so the
    default --mpsim-tolerance is 0 (exact match).
  * RRR histogram (`samples.size_histogram.{count,sum}`): sampling is
    counter-based and reproducible, so the default --histogram-tolerance
    is 0 as well.
  * registry counters (report-log `registry.counters`, when both files are
    report logs): values may grow by --counter-tolerance (relative, default
    0.25 — timing counters like graph.*.micros are noisy).  The integrity
    layer's `integrity.*` family (DESIGN.md §14: checks, corruptions
    detected, retries, escalations, injected faults, scrub passes/repairs)
    rides under --counter-tolerance too, but as a symmetric band: a
    candidate that verifies fewer payloads or scrubs fewer blocks than its
    baseline has LOST coverage, so a shrink beyond tolerance fails just
    like a growth — the one-sided rule that treats smaller counters as
    improvements does not apply to checking work.  The detection-side
    counters only exist on runs that detected something — a fault-injected
    candidate diffed against a clean baseline reports them as one-sided
    presence diffs, which --allow-missing downgrades to notes.
  * memory (`storage.{rrr_peak_bytes,tracker_peak_bytes,peak_rss_bytes}`):
    candidate may exceed baseline by --memory-tolerance (relative, default
    0.25 — RSS is allocator- and kernel-dependent).  The memory governor's
    registry counters (`mem.budget.*`) ride in this family too: how often a
    budgeted run reserved, refused, switched to compression, or shed batches
    is a memory-behaviour property, not a timing one.
  * degraded-run parity (`degraded` / `epsilon_achieved`, DESIGN.md §12): a
    run that stopped early under a memory budget is only comparable to
    another degraded run, so one side degrading while the other completed is
    ALWAYS a hard failure — --allow-missing does not downgrade it.  When
    both sides degraded, their certified epsilon values must match exactly
    (the certificate is deterministic for a fixed configuration).
  * per-round imbalance (`rounds[].imbalance_factor`, schema v5): rounds are
    matched by round number; candidate imbalance may exceed baseline by
    --imbalance-tolerance (relative, default 0.5 — timing-derived and
    noisy).  Per-rank `rrr_sets` counts are deterministic and compared
    exactly.
  * result identity (--check-seeds): the seeds array, theta value, sample
    count, and selection coverage must match EXACTLY.  This is the
    kill/resume equivalence check — a checkpoint-resumed run is only correct
    if it is bit-identical to the uninterrupted run, so there is no
    tolerance to configure.  --seeds-only checks just the seed array: the
    shrink-and-heal contract after a mid-run rank loss promises the
    failure-free seed set, but a fault that fires away from a martingale
    boundary may shift acceptance by one round, moving theta slightly.

--ignore-placement skips the families that encode WHERE work ran rather
than WHAT was computed: mpsim collective traffic, storage peaks, and the
per-round ledger (per-rank rrr_sets and imbalance).  check.sh's stealing
leg uses it to compare a work-stealing run against its no-steal baseline —
the runs must agree on every result-identity and sampling-distribution
check while legitimately differing in placement.

A metric present on one side and absent on the other is always a reported
diff, never a silent pass: a collective or registry counter appearing means
new communication/instrumentation, one disappearing means a regression run
would be comparing nothing (--allow-missing downgrades these to notes).

Schema versions: the two files must declare the SAME schema_version (taken
from the report-log envelope, falling back to the first report's field).
Comparing across schema revisions silently skips whatever fields one side
lacks, so a mismatch is a hard error, not a note.

Exit status: 0 when no check fails, 1 on any regression or match failure.
"""

import argparse
import json
import sys


def load_reports(path):
    """Returns (reports, registry, schema_version); registry is None for
    standalone docs."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if isinstance(doc, dict) and isinstance(doc.get("reports"), list):
        registry = doc.get("registry")
        version = doc.get("schema_version")
        if version is None and doc["reports"]:
            version = doc["reports"][0].get("schema_version")
        return (doc["reports"],
                registry if isinstance(registry, dict) else None, version)
    if isinstance(doc, dict) and "driver" in doc:
        return [doc], None, doc.get("schema_version")
    raise ValueError(f"{path}: neither a report log nor a single run report")


def pair_reports(baseline, candidate):
    """Match reports by (driver, per-driver occurrence index)."""
    def keyed(reports):
        seen = {}
        out = {}
        for report in reports:
            driver = report.get("driver", "?")
            index = seen.get(driver, 0)
            seen[driver] = index + 1
            out[(driver, index)] = report
        return out

    base_map = keyed(baseline)
    cand_map = keyed(candidate)
    pairs = [(key, base_map[key], cand_map[key])
             for key in base_map if key in cand_map]
    missing = sorted(set(base_map) - set(cand_map))
    extra = sorted(set(cand_map) - set(base_map))
    return pairs, missing, extra


def dig(report, *keys):
    node = report
    for key in keys:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


class Comparison:
    def __init__(self, args):
        self.args = args
        self.failures = []
        self.checked = 0

    def fail(self, message):
        self.failures.append(message)
        print(f"FAIL  {message}")

    def presence_diff(self, label, in_baseline):
        """A metric present on one side only is a diff, not a silent pass."""
        self.checked += 1
        side = "baseline" if in_baseline else "candidate"
        message = f"{label}: present in {side} only"
        if self.args.allow_missing:
            print(f"note  {message}")
        else:
            self.fail(message)

    def check_relative(self, label, base, cand, tolerance, min_delta=0.0):
        """Flags cand exceeding base by more than `tolerance` (relative)."""
        self.checked += 1
        if base is None or cand is None:
            self.fail(f"{label}: missing value (baseline={base}, "
                      f"candidate={cand})")
            return
        delta = cand - base
        limit = abs(base) * tolerance
        if delta > limit and delta > min_delta:
            grown = (cand / base - 1.0) * 100.0 if base else float("inf")
            self.fail(f"{label}: {base:g} -> {cand:g} "
                      f"(+{grown:.1f}% > {tolerance * 100:.0f}% tolerance)")
        else:
            print(f"ok    {label}: {base:g} -> {cand:g}")

    def check_band(self, label, base, cand, tolerance):
        """Flags cand leaving the symmetric band around base.  Used for the
        integrity.* counters, where a shrink matters as much as a growth: a
        candidate that verifies fewer payloads or scrubs fewer blocks than
        its baseline has lost coverage, which the one-sided growth check
        would silently wave through."""
        self.checked += 1
        if base is None or cand is None:
            self.fail(f"{label}: missing value (baseline={base}, "
                      f"candidate={cand})")
            return
        limit = abs(base) * tolerance
        if abs(cand - base) > limit:
            moved = (cand / base - 1.0) * 100.0 if base else float("inf")
            self.fail(f"{label}: {base:g} -> {cand:g} "
                      f"({moved:+.1f}% outside the +/-{tolerance * 100:.0f}% "
                      "band)")
        else:
            print(f"ok    {label}: {base:g} -> {cand:g}")

    def check_exact(self, label, base, cand):
        """Bit-for-bit equality; used for the resume-equivalence fields."""
        self.checked += 1
        if base == cand:
            print(f"ok    {label}: identical")
        else:
            self.fail(f"{label}: baseline {base!r} != candidate {cand!r}")

    def compare_report(self, key, base, cand):
        driver, index = key
        label = f"{driver}[{index}]"

        self.compare_degradation(label, base, cand)

        if self.args.check_seeds or self.args.seeds_only:
            self.check_exact(f"{label}.seeds", dig(base, "seeds"),
                             dig(cand, "seeds"))
        if self.args.check_seeds:
            self.check_exact(f"{label}.theta.value",
                             dig(base, "theta", "value"),
                             dig(cand, "theta", "value"))
            self.check_exact(f"{label}.samples.generated",
                             dig(base, "samples", "generated"),
                             dig(cand, "samples", "generated"))
            self.check_exact(f"{label}.selection.coverage_fraction",
                             dig(base, "selection", "coverage_fraction"),
                             dig(cand, "selection", "coverage_fraction"))

        for phase in ("estimate_theta", "sample", "select_seeds", "other",
                      "total"):
            self.check_relative(
                f"{label}.phases.{phase}",
                dig(base, "phases_seconds", phase),
                dig(cand, "phases_seconds", phase),
                self.args.phase_tolerance,
                self.args.phase_min_seconds)

        base_comm = {} if self.args.ignore_placement else (
            dig(base, "mpsim") or {})
        cand_comm = {} if self.args.ignore_placement else (
            dig(cand, "mpsim") or {})
        for collective in sorted(set(base_comm) | set(cand_comm)):
            if collective not in base_comm or collective not in cand_comm:
                self.presence_diff(f"{label}.mpsim.{collective}",
                                   collective in base_comm)
                continue
            for field in ("calls", "bytes"):
                self.check_relative(
                    f"{label}.mpsim.{collective}.{field}",
                    dig(base_comm, collective, field) or 0,
                    dig(cand_comm, collective, field) or 0,
                    self.args.mpsim_tolerance)

        for field in ("count", "sum"):
            self.check_relative(
                f"{label}.rrr_histogram.{field}",
                dig(base, "samples", "size_histogram", field),
                dig(cand, "samples", "size_histogram", field),
                self.args.histogram_tolerance)

        for field in (() if self.args.ignore_placement else
                      ("rrr_peak_bytes", "tracker_peak_bytes",
                       "peak_rss_bytes")):
            base_value = dig(base, "storage", field)
            cand_value = dig(cand, "storage", field)
            if base_value is None and cand_value is None:
                continue  # pre-v5 reports lack the tracker/RSS fields
            if base_value is None or cand_value is None:
                self.presence_diff(f"{label}.storage.{field}",
                                   base_value is not None)
                continue
            self.check_relative(f"{label}.storage.{field}", base_value,
                                cand_value, self.args.memory_tolerance)

        if not self.args.ignore_placement:
            self.compare_rounds(label, base, cand)

    def compare_degradation(self, label, base, cand):
        """Degraded-run parity (DESIGN.md §12): every other family would
        otherwise diff a complete run against a truncated one and report
        nonsense, so a degraded/complete mismatch is unconditionally fatal."""
        base_degraded = bool(dig(base, "degraded"))
        cand_degraded = bool(dig(cand, "degraded"))
        if not base_degraded and not cand_degraded:
            return
        self.checked += 1
        if base_degraded != cand_degraded:
            side = "baseline" if base_degraded else "candidate"
            self.fail(f"{label}.degraded: only the {side} run degraded under "
                      "its memory budget — a complete and a degraded run are "
                      "not comparable")
            return
        print(f"ok    {label}.degraded: both runs degraded under budget")
        self.check_exact(f"{label}.epsilon_achieved",
                         dig(base, "epsilon_achieved"),
                         dig(cand, "epsilon_achieved"))

    def compare_rounds(self, label, base, cand):
        """Per-round ledger (schema v5): imbalance within tolerance, RRR set
        counts exact (sampling is deterministic for a fixed config)."""
        base_rounds = {r.get("round"): r for r in dig(base, "rounds") or []}
        cand_rounds = {r.get("round"): r for r in dig(cand, "rounds") or []}
        if not base_rounds and not cand_rounds:
            return
        for number in sorted(set(base_rounds) | set(cand_rounds)):
            if number not in base_rounds or number not in cand_rounds:
                self.presence_diff(f"{label}.rounds[{number}]",
                                   number in base_rounds)
                continue
            self.check_relative(
                f"{label}.rounds[{number}].imbalance_factor",
                dig(base_rounds[number], "imbalance_factor"),
                dig(cand_rounds[number], "imbalance_factor"),
                self.args.imbalance_tolerance)
            base_sets = sorted((e.get("rank"), e.get("rrr_sets"))
                               for e in base_rounds[number].get("per_rank", []))
            cand_sets = sorted((e.get("rank"), e.get("rrr_sets"))
                               for e in cand_rounds[number].get("per_rank", []))
            self.check_exact(f"{label}.rounds[{number}].per_rank.rrr_sets",
                             base_sets, cand_sets)

    def compare_registries(self, base_registry, cand_registry):
        """Registry counters: presence mismatches are diffs, values may grow
        by --counter-tolerance — except the memory governor's mem.budget.*
        family, which diffs under --memory-tolerance alongside the storage
        peaks it governs, and the integrity.* family (verification checks,
        detections, retries, escalations, injected faults, scrub activity),
        which diffs as a symmetric band under --counter-tolerance — losing
        checking work is as much a regression as adding it.  Detection-side
        integrity counters appear only on runs that detected something, so
        against a clean baseline they surface as presence diffs."""
        base_counters = dig(base_registry, "counters") or {}
        cand_counters = dig(cand_registry, "counters") or {}
        for name in sorted(set(base_counters) | set(cand_counters)):
            if name not in base_counters or name not in cand_counters:
                self.presence_diff(f"registry.counters.{name}",
                                   name in base_counters)
                continue
            if name.startswith("integrity."):
                self.check_band(f"registry.counters.{name}",
                                base_counters[name], cand_counters[name],
                                self.args.counter_tolerance)
                continue
            tolerance = (self.args.memory_tolerance
                         if name.startswith("mem.budget.")
                         else self.args.counter_tolerance)
            self.check_relative(f"registry.counters.{name}",
                                base_counters[name], cand_counters[name],
                                tolerance)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline --json-report file")
    parser.add_argument("candidate", help="candidate --json-report file")
    parser.add_argument("--phase-tolerance", type=float, default=0.25,
                        help="relative growth allowed per phase time "
                             "(default 0.25)")
    parser.add_argument("--phase-min-seconds", type=float, default=0.05,
                        help="absolute growth a phase regression must also "
                             "exceed (default 0.05)")
    parser.add_argument("--mpsim-tolerance", type=float, default=0.0,
                        help="relative growth allowed for collective "
                             "calls/bytes (default 0: exact)")
    parser.add_argument("--histogram-tolerance", type=float, default=0.0,
                        help="relative growth allowed for RRR histogram "
                             "count/sum (default 0: exact)")
    parser.add_argument("--counter-tolerance", type=float, default=0.25,
                        help="relative growth allowed per registry counter "
                             "(default 0.25; timing counters are noisy)")
    parser.add_argument("--memory-tolerance", type=float, default=0.25,
                        help="relative growth allowed for storage peaks "
                             "(default 0.25; RSS is allocator-dependent)")
    parser.add_argument("--imbalance-tolerance", type=float, default=0.5,
                        help="relative growth allowed per round imbalance "
                             "factor (default 0.5; timing-derived)")
    parser.add_argument("--check-seeds", action="store_true",
                        help="require EXACT equality of seeds, theta, sample "
                             "count, and coverage (kill/resume equivalence)")
    parser.add_argument("--seeds-only", action="store_true",
                        help="require EXACT equality of the seed set but not "
                             "theta or the sample count (the shrink-and-heal "
                             "guarantee: a non-boundary fault may shift the "
                             "martingale by a round, so theta equality is "
                             "only promised for boundary faults)")
    parser.add_argument("--ignore-placement", action="store_true",
                        help="skip the placement-sensitive families (mpsim "
                             "collective traffic, storage peaks, per-round "
                             "ledger) when comparing runs whose work "
                             "placement legitimately differs, e.g. stealing "
                             "on vs off; result identity and the RRR "
                             "histogram still apply")
    parser.add_argument("--allow-missing", action="store_true",
                        help="don't fail when a baseline report has no "
                             "candidate counterpart")
    args = parser.parse_args()

    try:
        baseline, base_registry, base_version = load_reports(args.baseline)
        candidate, cand_registry, cand_version = load_reports(args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    if base_version != cand_version:
        print(f"error: schema_version mismatch: baseline declares "
              f"{base_version!r}, candidate declares {cand_version!r} — "
              "comparing across schema revisions would silently skip fields; "
              "regenerate the baseline with the current binary",
              file=sys.stderr)
        return 1

    pairs, missing, extra = pair_reports(baseline, candidate)
    comparison = Comparison(args)
    for key, base, cand in pairs:
        comparison.compare_report(key, base, cand)
    if base_registry is not None and cand_registry is not None:
        comparison.compare_registries(base_registry, cand_registry)
    for key in missing:
        message = f"{key[0]}[{key[1]}]: present in baseline only"
        if args.allow_missing:
            print(f"note  {message}")
        else:
            comparison.fail(message)
    for key in extra:
        print(f"note  {key[0]}[{key[1]}]: present in candidate only")

    status = "FAILED" if comparison.failures else "passed"
    print(f"\n{comparison.checked} checks over {len(pairs)} report pair(s): "
          f"{len(comparison.failures)} regression(s) — {status}")
    return 1 if comparison.failures else 0


if __name__ == "__main__":
    sys.exit(main())
